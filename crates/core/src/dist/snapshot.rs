//! Always-fresh snapshot reads: an epoch-versioned view of the sample
//! published by the protocol while ingestion keeps running.
//!
//! Algorithm 1 leaves the sample implicit between `collect_output` calls;
//! a production sampler wants the opposite — a valid, consistent sample
//! *always* available, in the spirit of Jayaram et al.'s continuous
//! distributed sampling. This module supplies the read side: each
//! selection round (under [`ContinuousMode::EveryBatch`](crate::dist::ContinuousMode))
//! the engine assembles a finalized-to-`k` view through the existing
//! Section 5 finalize/place path and *publishes* it here as an immutable
//! [`SampleEpoch`] behind a seqlock-guarded pointer swap.
//!
//! The concurrency scheme reuses the PR 6 versioning primitive
//! ([`reservoir_btree::SeqLock`]):
//!
//! ```text
//!   publisher                       readers (any thread, any number)
//!   ─────────                       ────────────────────────────────
//!   v = read_begin()                v = read_begin()      // even or spin
//!   guard = try_lock(v)   // v+1    arc = cur.clone()     // Arc bump
//!   cur = Arc::new(epoch)           validate(v)?          // still even,
//!   drop(guard)           // v+2        unchanged ⇒ consistent
//! ```
//!
//! A reader that loses the race (version moved, or the writer held the
//! slot past the bounded spin) simply retries; it never blocks the
//! pipeline and never observes a half-swapped epoch, because the only
//! mutation inside the critical section is replacing one `Arc` pointer.
//! A publisher that panics mid-publish unwinds through the
//! [`WriteGuard`](reservoir_btree::WriteGuard), releasing the version
//! word, and the previous `Arc` stays installed — the last epoch remains
//! readable forever. Every epoch carries a checksum over its entire
//! payload so the stress suite can assert "no torn reads" as a checkable
//! invariant rather than a belief.
//!
//! Because the seqlock fires the [`reservoir_btree::sched`] hooks, the
//! seeded `YieldInjector` used by the OLC stress suite drives genuine
//! reader/writer interleavings through publication as well.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use reservoir_btree::SeqLock;
use reservoir_obs::{LazyCounter, LazyGauge};

use crate::sample::SampleItem;

/// Epochs swapped into snapshot slots (all publishers in-process; the
/// engine's `engine_epochs_published_total` counts the protocol-level
/// publications that feed them).
static SNAPSHOT_PUBLICATIONS: LazyCounter = LazyCounter::new(
    "snapshot_publications_total",
    "sample epochs swapped into snapshot slots",
);
static SNAPSHOT_READS: LazyCounter = LazyCounter::new(
    "snapshot_reads_total",
    "consistent epoch reads served to snapshot readers",
);
/// Slow path only: a read that validated first try never touches this.
static SNAPSHOT_READ_RETRIES: LazyCounter = LazyCounter::new(
    "snapshot_read_retries_total",
    "snapshot reads that retried against a mid-swap publisher",
);
static SNAPSHOT_READER_STALENESS: LazyGauge = LazyGauge::new(
    "snapshot_reader_staleness",
    "epochs behind the latest publication of the most recent snapshot read",
);

/// One immutable published view of the sample, as seen by this protocol
/// endpoint: its own finalized slice plus the global placement agreed by
/// the finalize/place collectives (the simulated conductor publishes the
/// whole cluster's sample with `pes` endpoint slices folded in).
#[derive(Clone, Debug, PartialEq)]
pub struct SampleEpoch {
    /// Publication counter, 1-based; 0 is the pre-publication genesis
    /// epoch (empty sample).
    pub epoch: u64,
    /// This endpoint's sample members at publication time, key-sorted,
    /// finalized to the global sample size (every key is at or below
    /// `threshold` when one exists).
    pub items: Vec<SampleItem>,
    /// Global output position of `items[0]` (exclusive prefix count).
    pub offset: u64,
    /// Global sample size across all endpoints.
    pub total: u64,
    /// This endpoint's rank and the number of endpoints.
    pub pe: usize,
    /// See [`Self::pe`].
    pub pes: usize,
    /// The finalization threshold, if one was established.
    pub threshold: Option<f64>,
    /// Selection rounds the finalization spent producing this epoch (0
    /// when the union already fit in `k`).
    pub rounds: u32,
    /// FNV-1a digest over every field above. A reader that recomputes it
    /// and matches proves the epoch it holds is internally consistent —
    /// the stress suite's torn-read oracle.
    pub checksum: u64,
}

/// FNV-1a over a word stream: tiny, dependency-free, and plenty for a
/// consistency witness (this is an integrity check, not a defense).
fn fnv1a(words: impl Iterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

impl SampleEpoch {
    /// Assemble an epoch and stamp its checksum.
    #[allow(clippy::too_many_arguments)] // one field per parameter, in order
    pub fn new(
        epoch: u64,
        items: Vec<SampleItem>,
        offset: u64,
        total: u64,
        pe: usize,
        pes: usize,
        threshold: Option<f64>,
        rounds: u32,
    ) -> Self {
        let mut e = SampleEpoch {
            epoch,
            items,
            offset,
            total,
            pe,
            pes,
            threshold,
            rounds,
            checksum: 0,
        };
        e.checksum = e.compute_checksum();
        e
    }

    /// The epoch every slot starts from: number 0, empty sample.
    pub fn genesis(pe: usize, pes: usize) -> Self {
        Self::new(0, Vec::new(), 0, 0, pe, pes, None, 0)
    }

    /// Members this endpoint holds in this epoch.
    pub fn local_len(&self) -> u64 {
        self.items.len() as u64
    }

    fn compute_checksum(&self) -> u64 {
        let head = [
            self.epoch,
            self.offset,
            self.total,
            self.pe as u64,
            self.pes as u64,
            // A separate discriminant word: folding `None` into a
            // sentinel bit pattern would collide with a real threshold
            // carrying that same pattern (u64::MAX is a NaN encoding),
            // letting two different epochs share a checksum.
            self.threshold.is_some() as u64,
            self.threshold.map_or(0, f64::to_bits),
            self.rounds as u64,
            self.items.len() as u64,
        ];
        let body = self
            .items
            .iter()
            .flat_map(|s| [s.id, s.weight.to_bits(), s.key.to_bits()]);
        fnv1a(head.into_iter().chain(body))
    }

    /// Whether the stored checksum matches the payload — `false` means a
    /// torn or corrupted view, which the seqlock protocol must make
    /// unobservable.
    pub fn verify(&self) -> bool {
        self.checksum == self.compute_checksum()
    }
}

/// The shared slot: one seqlock versioning one `Arc` pointer. The inner
/// mutex only serializes the pointer clone/swap itself (a few
/// nanoseconds); the seqlock provides the readers' consistency proof and
/// the sched-hook instrumentation points.
struct Slot {
    lock: SeqLock,
    cur: Mutex<Arc<SampleEpoch>>,
    /// Published-epoch counter, readable without touching the slot (the
    /// readers' staleness probe).
    latest: AtomicU64,
}

impl Slot {
    fn new(genesis: SampleEpoch) -> Self {
        Slot {
            lock: SeqLock::new(),
            cur: Mutex::new(Arc::new(genesis)),
            latest: AtomicU64::new(0),
        }
    }
}

/// The write side, owned by the protocol endpoint: swaps in a fresh
/// epoch per publication. Single-writer by construction (one publisher
/// per endpoint), but safe regardless — the seqlock upgrade loop simply
/// retries a lost race.
pub struct EpochPublisher {
    slot: Arc<Slot>,
    published: u64,
}

impl EpochPublisher {
    /// A publisher over a fresh slot holding the genesis epoch for
    /// endpoint `pe` of `pes`.
    pub fn new(pe: usize, pes: usize) -> Self {
        EpochPublisher {
            slot: Arc::new(Slot::new(SampleEpoch::genesis(pe, pes))),
            published: 0,
        }
    }

    /// The next epoch number this publisher will assign.
    pub fn next_epoch(&self) -> u64 {
        self.published + 1
    }

    /// Epochs published so far.
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Swap `epoch` in as the current view. Readers racing this swap
    /// either validate against the old version (and see the old epoch,
    /// at most one behind) or retry and see the new one; no interleaving
    /// exposes a mix.
    pub fn publish(&mut self, epoch: SampleEpoch) {
        debug_assert!(epoch.verify(), "publishing an inconsistent epoch");
        let next = Arc::new(epoch);
        loop {
            let Ok(v) = self.slot.lock.read_begin() else {
                // A reader cannot hold the lock; only a racing publisher
                // can, and it releases in bounded time.
                std::hint::spin_loop();
                continue;
            };
            let Some(guard) = self.slot.lock.try_lock(v) else {
                std::hint::spin_loop();
                continue;
            };
            // Poison-tolerant: a publisher that panicked *around* the
            // mutex leaves the previous Arc intact and fully readable.
            let mut cur = self.slot.cur.lock().unwrap_or_else(|e| e.into_inner());
            *cur = next;
            drop(cur);
            drop(guard); // version += 2: readers revalidate
            break;
        }
        self.published += 1;
        self.slot.latest.store(self.published, Ordering::Release);
        SNAPSHOT_PUBLICATIONS.inc();
    }

    /// A read handle over the same slot; clone freely across threads.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader {
            slot: Arc::clone(&self.slot),
        }
    }
}

/// The read side: grab a consistent [`SampleEpoch`] at any time, from
/// any thread, without stopping ingestion. Cheap to clone; all clones
/// observe the same publication order.
#[derive(Clone)]
pub struct SnapshotReader {
    slot: Arc<Slot>,
}

impl SnapshotReader {
    /// The current epoch. Lock-free in the optimistic sense: the reader
    /// spins only while a publisher is mid-swap, then returns a shared
    /// handle on the immutable epoch — no copy of the items.
    pub fn read(&self) -> Arc<SampleEpoch> {
        loop {
            let Ok(v) = self.slot.lock.read_begin() else {
                SNAPSHOT_READ_RETRIES.inc();
                std::hint::spin_loop();
                continue;
            };
            let arc = Arc::clone(&self.slot.cur.lock().unwrap_or_else(|e| e.into_inner()));
            if self.slot.lock.validate(v) {
                if reservoir_obs::enabled() {
                    SNAPSHOT_READS.inc();
                    let latest = self.slot.latest.load(Ordering::Acquire);
                    SNAPSHOT_READER_STALENESS.set(latest.saturating_sub(arc.epoch) as f64);
                }
                return arc;
            }
            // A publisher swapped underneath the clone; retry for a
            // provably consistent view.
            SNAPSHOT_READ_RETRIES.inc();
            std::hint::spin_loop();
        }
    }

    /// The number of the most recently published epoch, without reading
    /// it — a free staleness probe (`read().epoch` is at least this by
    /// the time the read returns, never more than one publication
    /// behind a concurrent publish).
    pub fn latest_epoch(&self) -> u64 {
        self.slot.latest.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn item(id: u64, key: f64) -> SampleItem {
        SampleItem {
            id,
            weight: 1.0,
            key,
        }
    }

    fn epoch(n: u64, len: u64) -> SampleEpoch {
        let items = (0..len).map(|i| item(n * 1000 + i, i as f64)).collect();
        SampleEpoch::new(n, items, 0, len, 0, 1, Some(0.5), 1)
    }

    #[test]
    fn genesis_is_readable_and_verifies() {
        let p = EpochPublisher::new(2, 8);
        let r = p.reader();
        let e = r.read();
        assert_eq!(e.epoch, 0);
        assert_eq!(e.local_len(), 0);
        assert_eq!((e.pe, e.pes), (2, 8));
        assert!(e.verify());
        assert_eq!(r.latest_epoch(), 0);
    }

    #[test]
    fn publish_then_read_round_trips() {
        let mut p = EpochPublisher::new(0, 1);
        let r = p.reader();
        for n in 1..=5u64 {
            p.publish(epoch(n, 10));
            let e = r.read();
            assert_eq!(e.epoch, n);
            assert_eq!(e.local_len(), 10);
            assert!(e.verify());
            assert_eq!(r.latest_epoch(), n);
        }
        assert_eq!(p.published(), 5);
        assert_eq!(p.next_epoch(), 6);
    }

    #[test]
    fn checksum_detects_tampering() {
        let mut e = epoch(3, 4);
        assert!(e.verify());
        e.items[2].key += 1.0;
        assert!(!e.verify(), "checksum must witness a torn payload");
    }

    #[test]
    fn checksum_distinguishes_absent_threshold_from_nan_patterns() {
        // Regression: `None` used to hash as the sentinel u64::MAX, which
        // is also a NaN bit pattern — an epoch whose threshold *is* that
        // NaN checksummed identically to one with no threshold at all.
        let items: Vec<SampleItem> = (0..4).map(|i| item(i, i as f64)).collect();
        let none = SampleEpoch::new(7, items.clone(), 0, 4, 0, 1, None, 1);
        let nan = SampleEpoch::new(
            7,
            items.clone(),
            0,
            4,
            0,
            1,
            Some(f64::from_bits(u64::MAX)),
            1,
        );
        assert!(none.verify() && nan.verify());
        assert_ne!(
            none.checksum, nan.checksum,
            "absent threshold must not collide with a NaN-threshold epoch"
        );
        // And a zero-bits threshold (+0.0) must not collide with `None`
        // either, now that the value word defaults to 0 for `None`.
        let zero = SampleEpoch::new(7, items, 0, 4, 0, 1, Some(0.0), 1);
        assert_ne!(none.checksum, zero.checksum);
    }

    #[test]
    fn readers_race_publisher_without_torn_views() {
        let mut p = EpochPublisher::new(0, 1);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = p.reader();
                let stop = &stop;
                s.spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let e = r.read();
                        assert!(e.verify(), "torn epoch {}", e.epoch);
                        assert!(e.epoch >= last, "epoch went backwards");
                        assert_eq!(e.local_len(), e.total, "mixed epochs");
                        last = e.epoch;
                    }
                });
            }
            for n in 1..=200u64 {
                p.publish(epoch(n, n % 7));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(p.reader().read().epoch, 200);
    }
}
