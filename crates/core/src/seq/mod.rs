//! Sequential reservoir samplers — the single-PE building blocks.
//!
//! Two families, each in a jump-based (fast) and a naive (reference)
//! version:
//!
//! * **Weighted** (Section 4.1): items carry positive weights; the sample
//!   is without replacement with the order-dependent inclusion law of the
//!   exponential-clocks method. [`WeightedJumpSampler`] skips
//!   `Exp(T)`-distributed amounts of *weight* between reservoir insertions;
//!   [`WeightedNaiveSampler`] draws a key for every item. Both produce
//!   identically distributed samples — a property the test-suite checks
//!   statistically.
//! * **Uniform** (Section 4.3): [`UniformJumpSampler`] skips
//!   geometrically many *items* per insertion in O(1); its reference is
//!   [`UniformNaiveSampler`].

mod uniform;
mod weighted;

pub use uniform::{UniformJumpSampler, UniformNaiveSampler};
pub use weighted::{WeightedJumpSampler, WeightedNaiveSampler};

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use reservoir_btree::SampleKey;

use crate::sample::SampleItem;

/// Counters describing how much work a sequential sampler performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeqStats {
    /// Items offered to the sampler.
    pub processed: u64,
    /// Reservoir insertions performed.
    pub inserted: u64,
    /// Skip values drawn (jump samplers only).
    pub jumps: u64,
}

/// Max-heap entry: the reservoir keeps the k smallest keys, so the heap is
/// ordered by key with the *largest* (the threshold) on top.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct HeapEntry {
    pub key: SampleKey,
    pub weight: f64,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

/// Shared reservoir plumbing for the sequential samplers.
#[derive(Clone, Debug, Default)]
pub(crate) struct Heap {
    entries: BinaryHeap<HeapEntry>,
}

impl Heap {
    pub fn with_capacity(k: usize) -> Self {
        Heap {
            entries: BinaryHeap::with_capacity(k + 1),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Current threshold: the largest key in the reservoir.
    pub fn peek_key(&self) -> Option<f64> {
        self.entries.peek().map(|e| e.key.key)
    }

    pub fn push(&mut self, key: SampleKey, weight: f64) {
        self.entries.push(HeapEntry { key, weight });
    }

    /// Replace the largest entry with a new one and return the new
    /// threshold key.
    pub fn replace_max(&mut self, key: SampleKey, weight: f64) -> f64 {
        let evicted = self.entries.pop().expect("replace_max on empty reservoir");
        debug_assert!(
            key <= evicted.key,
            "replacement key must beat the threshold"
        );
        self.entries.push(HeapEntry { key, weight });
        self.peek_key().expect("nonempty after push")
    }

    pub fn items(&self) -> Vec<SampleItem> {
        self.entries
            .iter()
            .map(|e| SampleItem::from_entry(&e.key, e.weight))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_keeps_largest_on_top() {
        let mut h = Heap::with_capacity(3);
        h.push(SampleKey::new(0.5, 1), 1.0);
        h.push(SampleKey::new(0.2, 2), 1.0);
        h.push(SampleKey::new(0.9, 3), 1.0);
        assert_eq!(h.peek_key(), Some(0.9));
        let new_t = h.replace_max(SampleKey::new(0.1, 4), 1.0);
        assert_eq!(new_t, 0.5);
        assert_eq!(h.len(), 3);
        let mut ids: Vec<u64> = h.items().iter().map(|s| s.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 4]);
    }
}
