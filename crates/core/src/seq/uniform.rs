//! Sequential uniform (unweighted) reservoir sampling.
//!
//! Keys are uniform variates from `(0, 1]`; the sample is the set of items
//! with the `k` smallest keys. The jump sampler implements the geometric
//! jumps of Section 4.3 (after Devroye): with threshold `T`, the number of
//! items to skip before the next insertion is
//! `X = ⌊ln(rand())/ln(1−T)⌋` — skipping is **O(1) per jump** because no
//! weight needs to be read, which is the crucial difference from the
//! weighted case.

use reservoir_btree::SampleKey;
use reservoir_rng::Rng64;

use super::{Heap, SeqStats};
use crate::sample::SampleItem;

/// Uniform reservoir sampler with geometric jumps (Section 4.3).
///
/// `process_run` consumes a run of `count` consecutive item ids in one call
/// and touches only the O(inserted) items that actually enter — the
/// asymptotic advantage of uniform jumps.
#[derive(Clone, Debug)]
pub struct UniformJumpSampler<R: Rng64> {
    k: usize,
    rng: R,
    heap: Heap,
    /// Items still to skip before the next insertion (valid once full).
    skip: u64,
    stats: SeqStats,
}

impl<R: Rng64> UniformJumpSampler<R> {
    /// Reservoir of size `k ≥ 1`.
    pub fn new(k: usize, rng: R) -> Self {
        assert!(k >= 1, "reservoir size must be at least 1");
        UniformJumpSampler {
            k,
            rng,
            heap: Heap::with_capacity(k),
            skip: 0,
            stats: SeqStats::default(),
        }
    }

    /// Offer one item; returns `true` if it entered the reservoir.
    pub fn process(&mut self, id: u64) -> bool {
        self.stats.processed += 1;
        if self.heap.len() < self.k {
            let key = self.rng.rand_oc();
            self.heap.push(SampleKey::new(key, id), 1.0);
            self.stats.inserted += 1;
            if self.heap.len() == self.k {
                self.draw_skip();
            }
            return true;
        }
        if self.skip > 0 {
            self.skip -= 1;
            return false;
        }
        self.insert_replacing(id);
        true
    }

    /// Offer the id range `first..first+count` at once; only inserted items
    /// cost more than O(1) amortized.
    pub fn process_run(&mut self, first: u64, count: u64) {
        let mut next = first;
        let end = first + count;
        // Growing phase item by item.
        while self.heap.len() < self.k && next < end {
            self.process(next);
            next += 1;
        }
        while next < end {
            let remaining = end - next;
            if self.skip >= remaining {
                self.skip -= remaining;
                self.stats.processed += remaining;
                return;
            }
            next += self.skip;
            self.stats.processed += self.skip + 1;
            self.insert_replacing(next);
            next += 1;
        }
    }

    fn insert_replacing(&mut self, id: u64) {
        let t = self.heap.peek_key().expect("full reservoir");
        // Key of the inserted item: uniform in (0, T] (paper: rand()·T).
        let v = self.rng.rand_oc() * t;
        self.heap.replace_max(SampleKey::new(v, id), 1.0);
        self.stats.inserted += 1;
        self.draw_skip();
    }

    fn draw_skip(&mut self) {
        let t = self.heap.peek_key().expect("full reservoir");
        self.skip = self.rng.geometric_skips(t);
        self.stats.jumps += 1;
    }

    /// The current sample.
    pub fn sample(&self) -> Vec<SampleItem> {
        self.heap.items()
    }

    /// Current threshold once the reservoir is full.
    pub fn threshold(&self) -> Option<f64> {
        (self.heap.len() == self.k).then(|| self.heap.peek_key().expect("full"))
    }

    /// Number of items currently in the reservoir.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the reservoir is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.len() == 0
    }

    /// Work counters.
    pub fn stats(&self) -> SeqStats {
        self.stats
    }
}

/// Reference sampler: a uniform key per item, keep the k smallest.
#[derive(Clone, Debug)]
pub struct UniformNaiveSampler<R: Rng64> {
    k: usize,
    rng: R,
    heap: Heap,
    stats: SeqStats,
}

impl<R: Rng64> UniformNaiveSampler<R> {
    /// Reservoir of size `k ≥ 1`.
    pub fn new(k: usize, rng: R) -> Self {
        assert!(k >= 1, "reservoir size must be at least 1");
        UniformNaiveSampler {
            k,
            rng,
            heap: Heap::with_capacity(k),
            stats: SeqStats::default(),
        }
    }

    /// Offer one item; returns `true` if it entered the reservoir.
    pub fn process(&mut self, id: u64) -> bool {
        self.stats.processed += 1;
        let v = self.rng.rand_oc();
        if self.heap.len() < self.k {
            self.heap.push(SampleKey::new(v, id), 1.0);
            self.stats.inserted += 1;
            return true;
        }
        if v < self.heap.peek_key().expect("full") {
            self.heap.replace_max(SampleKey::new(v, id), 1.0);
            self.stats.inserted += 1;
            return true;
        }
        false
    }

    /// The current sample.
    pub fn sample(&self) -> Vec<SampleItem> {
        self.heap.items()
    }

    /// Work counters.
    pub fn stats(&self) -> SeqStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reservoir_rng::default_rng;

    #[test]
    fn sample_size_and_threshold() {
        let mut s = UniformJumpSampler::new(5, default_rng(1));
        for i in 0..3u64 {
            s.process(i);
        }
        assert_eq!(s.sample().len(), 3);
        assert_eq!(s.threshold(), None);
        for i in 3..1000u64 {
            s.process(i);
        }
        assert_eq!(s.sample().len(), 5);
        let t = s.threshold().expect("full");
        assert!(t > 0.0 && t <= 1.0);
    }

    #[test]
    fn process_run_equals_item_by_item_statistically() {
        // Inclusion probability of any item must be k/n either way; check
        // the last item (most sensitive to off-by-one skip handling).
        let n = 500u64;
        let k = 10;
        let trials = 4000;
        let mut hits_run = 0;
        let mut hits_item = 0;
        for t in 0..trials {
            let mut a = UniformJumpSampler::new(k, default_rng(3 * t));
            a.process_run(0, n);
            if a.sample().iter().any(|s| s.id == n - 1) {
                hits_run += 1;
            }
            let mut b = UniformJumpSampler::new(k, default_rng(3 * t + 1));
            for i in 0..n {
                b.process(i);
            }
            if b.sample().iter().any(|s| s.id == n - 1) {
                hits_item += 1;
            }
        }
        let expect = k as f64 / n as f64;
        let fr = hits_run as f64 / trials as f64;
        let fi = hits_item as f64 / trials as f64;
        assert!((fr - expect).abs() < 0.01, "run inclusion {fr} vs {expect}");
        assert!(
            (fi - expect).abs() < 0.01,
            "item inclusion {fi} vs {expect}"
        );
    }

    #[test]
    fn inclusion_is_uniform_over_positions() {
        // Every position should be included with probability k/n.
        let n = 200u64;
        let k = 20;
        let trials = 2000u64;
        let mut counts = vec![0u32; n as usize];
        for t in 0..trials {
            let mut s = UniformJumpSampler::new(k, default_rng(7 + t));
            s.process_run(0, n);
            for item in s.sample() {
                counts[item.id as usize] += 1;
            }
        }
        let expect = trials as f64 * k as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 6.0 * (expect).sqrt(),
                "position {i}: {c} inclusions vs expected {expect}"
            );
        }
    }

    #[test]
    fn jump_processes_touch_few_items() {
        let mut s = UniformJumpSampler::new(50, default_rng(9));
        s.process_run(0, 1_000_000);
        let st = s.stats();
        assert_eq!(st.processed, 1_000_000);
        // ≈ k(1 + ln(n/k)) ≈ 50 · 10.9 ≈ 545 insertions expected.
        assert!(st.inserted < 2_000, "inserted {}", st.inserted);
    }

    #[test]
    fn naive_matches_jump_inclusion_rate() {
        let n = 300u64;
        let k = 15;
        let trials = 2000u64;
        let mut hits = 0u32;
        for t in 0..trials {
            let mut s = UniformNaiveSampler::new(k, default_rng(t));
            for i in 0..n {
                s.process(i);
            }
            if s.sample().iter().any(|x| x.id == 123) {
                hits += 1;
            }
        }
        let frac = hits as f64 / trials as f64;
        let expect = k as f64 / n as f64;
        assert!((frac - expect).abs() < 0.015, "{frac} vs {expect}");
    }
}
