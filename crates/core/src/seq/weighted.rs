//! Sequential weighted reservoir sampling.
//!
//! Keys are exponential variates `v_i = −ln(rand())/w_i`; the sample is the
//! set of items with the `k` smallest keys (Section 3.1, "exponential
//! clocks"). The jump sampler implements the adapted exponential jumps of
//! Section 4.1: between insertions it draws the total *weight* to skip as
//! `X = −ln(rand())/T` (an `Exp(T)` variate for threshold `T`) and only
//! touches each skipped item's weight, never its key.

use reservoir_btree::SampleKey;
use reservoir_rng::Rng64;
use reservoir_stream::Item;

use super::{Heap, SeqStats};
use crate::sample::SampleItem;

/// Weighted reservoir sampler with exponential jumps (the paper's
/// sequential algorithm, Section 4.1).
#[derive(Clone, Debug)]
pub struct WeightedJumpSampler<R: Rng64> {
    k: usize,
    rng: R,
    heap: Heap,
    /// Weight still to skip before the next insertion; valid once the
    /// reservoir is full.
    skip: f64,
    stats: SeqStats,
}

impl<R: Rng64> WeightedJumpSampler<R> {
    /// Reservoir of size `k ≥ 1`.
    pub fn new(k: usize, rng: R) -> Self {
        assert!(k >= 1, "reservoir size must be at least 1");
        WeightedJumpSampler {
            k,
            rng,
            heap: Heap::with_capacity(k),
            skip: 0.0,
            stats: SeqStats::default(),
        }
    }

    /// Offer one item; returns `true` if it entered the reservoir.
    pub fn process(&mut self, id: u64, weight: f64) -> bool {
        debug_assert!(weight > 0.0, "weights must be positive");
        self.stats.processed += 1;
        if self.heap.len() < self.k {
            // Growing phase: every item gets a key and enters.
            let key = self.rng.exponential(weight);
            self.heap.push(SampleKey::new(key, id), weight);
            self.stats.inserted += 1;
            if self.heap.len() == self.k {
                self.draw_skip();
            }
            return true;
        }
        self.skip -= weight;
        if self.skip > 0.0 {
            return false;
        }
        // This item crosses the skip boundary: it enters the reservoir with
        // a key conditioned to beat the threshold (Section 4.1).
        let t = self.heap.peek_key().expect("full reservoir");
        let x = (-t * weight).exp();
        let v = -self.rng.rand_range_oc(x, 1.0).ln() / weight;
        self.heap.replace_max(SampleKey::new(v, id), weight);
        self.stats.inserted += 1;
        self.draw_skip();
        true
    }

    fn draw_skip(&mut self) {
        let t = self.heap.peek_key().expect("full reservoir");
        self.skip = self.rng.exponential(t);
        self.stats.jumps += 1;
    }

    /// Offer a whole mini-batch.
    pub fn process_batch(&mut self, items: &[Item]) {
        for it in items {
            self.process(it.id, it.weight);
        }
    }

    /// The current sample (all items seen if fewer than `k`).
    pub fn sample(&self) -> Vec<SampleItem> {
        self.heap.items()
    }

    /// Current threshold `T` (largest key in the reservoir), once full.
    pub fn threshold(&self) -> Option<f64> {
        (self.heap.len() == self.k).then(|| self.heap.peek_key().expect("full"))
    }

    /// Number of items currently in the reservoir.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the reservoir is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.len() == 0
    }

    /// Work counters.
    pub fn stats(&self) -> SeqStats {
        self.stats
    }

    /// Merge another sampler's reservoir into this one: afterwards this
    /// sampler holds a valid size-k weighted sample of the **union** of
    /// both input streams (both samplers must have disjoint item ids).
    ///
    /// Correct because keys are independent variates: the union sample is
    /// exactly the k smallest keys over both streams, and each reservoir
    /// retains every item whose key could be among them. The merged skip
    /// state is re-drawn against the new threshold (memorylessness).
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.k, other.k, "cannot merge reservoirs of different k");
        for item in other.sample() {
            if self.heap.len() < self.k {
                self.heap
                    .push(SampleKey::new(item.key, item.id), item.weight);
            } else if item.key < self.heap.peek_key().expect("full") {
                self.heap
                    .replace_max(SampleKey::new(item.key, item.id), item.weight);
            }
            self.stats.inserted += 1;
        }
        self.stats.processed += other.stats.processed;
        if self.heap.len() == self.k {
            self.draw_skip();
        }
    }
}

/// Reference sampler: draws `v_i = −ln(rand())/w_i` for **every** item and
/// keeps the k smallest — the plain Efraimidis–Spirakis method in its
/// exponential-clocks form. Distribution-identical to
/// [`WeightedJumpSampler`], an O(1)-keys-per-item baseline for tests and
/// benchmarks.
#[derive(Clone, Debug)]
pub struct WeightedNaiveSampler<R: Rng64> {
    k: usize,
    rng: R,
    heap: Heap,
    stats: SeqStats,
}

impl<R: Rng64> WeightedNaiveSampler<R> {
    /// Reservoir of size `k ≥ 1`.
    pub fn new(k: usize, rng: R) -> Self {
        assert!(k >= 1, "reservoir size must be at least 1");
        WeightedNaiveSampler {
            k,
            rng,
            heap: Heap::with_capacity(k),
            stats: SeqStats::default(),
        }
    }

    /// Offer one item; returns `true` if it entered the reservoir.
    pub fn process(&mut self, id: u64, weight: f64) -> bool {
        debug_assert!(weight > 0.0);
        self.stats.processed += 1;
        let v = self.rng.exponential(weight);
        if self.heap.len() < self.k {
            self.heap.push(SampleKey::new(v, id), weight);
            self.stats.inserted += 1;
            return true;
        }
        if v < self.heap.peek_key().expect("full") {
            self.heap.replace_max(SampleKey::new(v, id), weight);
            self.stats.inserted += 1;
            return true;
        }
        false
    }

    /// Offer a whole mini-batch.
    pub fn process_batch(&mut self, items: &[Item]) {
        for it in items {
            self.process(it.id, it.weight);
        }
    }

    /// The current sample.
    pub fn sample(&self) -> Vec<SampleItem> {
        self.heap.items()
    }

    /// Work counters.
    pub fn stats(&self) -> SeqStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reservoir_rng::default_rng;
    use std::collections::HashMap;

    #[test]
    fn sample_size_is_min_k_n() {
        let mut s = WeightedJumpSampler::new(10, default_rng(1));
        for i in 0..5u64 {
            s.process(i, 1.0);
        }
        assert_eq!(s.sample().len(), 5);
        assert_eq!(s.threshold(), None);
        for i in 5..100u64 {
            s.process(i, 1.0);
        }
        assert_eq!(s.sample().len(), 10);
        assert!(s.threshold().is_some());
    }

    #[test]
    fn sample_ids_are_distinct_and_seen() {
        let mut s = WeightedJumpSampler::new(20, default_rng(2));
        for i in 0..1000u64 {
            s.process(i, 1.0 + (i % 5) as f64);
        }
        let mut ids: Vec<u64> = s.sample().iter().map(|x| x.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
        assert!(ids.iter().all(|&i| i < 1000));
    }

    #[test]
    fn threshold_is_max_key_of_sample() {
        let mut s = WeightedJumpSampler::new(8, default_rng(3));
        for i in 0..500u64 {
            s.process(i, 0.5 + (i % 3) as f64);
        }
        let max_key = s
            .sample()
            .iter()
            .map(|x| x.key)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(s.threshold(), Some(max_key));
    }

    #[test]
    fn jump_sampler_inserts_far_fewer_than_processed() {
        let mut s = WeightedJumpSampler::new(100, default_rng(4));
        for i in 0..200_000u64 {
            s.process(i, 1.0);
        }
        let st = s.stats();
        assert_eq!(st.processed, 200_000);
        // Expected insertions ≈ k (1 + ln(n/k)) ≈ 100 · (1 + 7.6) ≈ 860.
        assert!(st.inserted < 3_000, "too many insertions: {}", st.inserted);
        assert!(st.inserted >= 100);
    }

    #[test]
    fn heavier_items_are_sampled_more_often() {
        // Item 0 has 30% of the total weight; over many runs it must appear
        // in a k=1 sample roughly 30% of the time.
        let trials = 4000;
        let mut hits = 0;
        for t in 0..trials {
            let mut s = WeightedJumpSampler::new(1, default_rng(1000 + t));
            s.process(0, 30.0);
            for i in 1..71u64 {
                s.process(i, 1.0);
            }
            if s.sample()[0].id == 0 {
                hits += 1;
            }
        }
        let frac = hits as f64 / trials as f64;
        assert!((frac - 0.3).abs() < 0.03, "inclusion fraction {frac}");
    }

    /// The jump and naive samplers must produce identically distributed
    /// samples: compare per-item inclusion frequencies over many trials.
    #[test]
    fn jump_matches_naive_distribution() {
        let n = 60u64;
        let k = 8;
        let trials = 3000u64;
        let weight = |i: u64| 0.5 + (i % 4) as f64;
        let mut count_jump: HashMap<u64, u32> = HashMap::new();
        let mut count_naive: HashMap<u64, u32> = HashMap::new();
        for t in 0..trials {
            let mut j = WeightedJumpSampler::new(k, default_rng(2 * t));
            let mut v = WeightedNaiveSampler::new(k, default_rng(2 * t + 1));
            for i in 0..n {
                j.process(i, weight(i));
                v.process(i, weight(i));
            }
            for s in j.sample() {
                *count_jump.entry(s.id).or_default() += 1;
            }
            for s in v.sample() {
                *count_naive.entry(s.id).or_default() += 1;
            }
        }
        for i in 0..n {
            let a = *count_jump.get(&i).unwrap_or(&0) as f64 / trials as f64;
            let b = *count_naive.get(&i).unwrap_or(&0) as f64 / trials as f64;
            assert!(
                (a - b).abs() < 0.05,
                "item {i}: jump inclusion {a:.3} vs naive {b:.3}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_rejected() {
        let _ = WeightedJumpSampler::new(0, default_rng(0));
    }

    #[test]
    fn merge_produces_union_sample_law() {
        // Sampling stream A∪B directly vs sampling A and B separately and
        // merging must give the same inclusion law. Track the heavy item.
        let k = 6;
        let trials = 3000u64;
        let mut direct_hits = 0u32;
        let mut merged_hits = 0u32;
        for t in 0..trials {
            let mut direct = WeightedJumpSampler::new(k, default_rng(3 * t));
            for id in 0..80u64 {
                direct.process(id, if id == 0 { 20.0 } else { 1.0 });
            }
            if direct.sample().iter().any(|s| s.id == 0) {
                direct_hits += 1;
            }
            let mut a = WeightedJumpSampler::new(k, default_rng(3 * t + 1));
            for id in 0..40u64 {
                a.process(id, if id == 0 { 20.0 } else { 1.0 });
            }
            let mut b = WeightedJumpSampler::new(k, default_rng(3 * t + 2));
            for id in 40..80u64 {
                b.process(id, 1.0);
            }
            a.merge(&b);
            assert_eq!(a.len(), k);
            if a.sample().iter().any(|s| s.id == 0) {
                merged_hits += 1;
            }
        }
        let fd = direct_hits as f64 / trials as f64;
        let fm = merged_hits as f64 / trials as f64;
        assert!((fd - fm).abs() < 0.04, "direct {fd:.3} vs merged {fm:.3}");
    }

    #[test]
    fn merge_with_partial_reservoirs() {
        let mut a = WeightedJumpSampler::new(10, default_rng(1));
        for id in 0..4u64 {
            a.process(id, 1.0);
        }
        let mut b = WeightedJumpSampler::new(10, default_rng(2));
        for id in 100..103u64 {
            b.process(id, 2.0);
        }
        a.merge(&b);
        assert_eq!(a.len(), 7);
        // Merging continues to accept new items correctly.
        for id in 200..300u64 {
            a.process(id, 1.0);
        }
        assert_eq!(a.len(), 10);
        let max_key = a.sample().iter().map(|s| s.key).fold(f64::MIN, f64::max);
        assert_eq!(a.threshold(), Some(max_key));
    }
}
