//! Sample members and related helpers.

use reservoir_btree::SampleKey;

/// One member of a reservoir sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampleItem {
    /// The item's globally unique id.
    pub id: u64,
    /// The item's weight (1.0 for uniform sampling).
    pub weight: f64,
    /// The random variate that admitted the item; the sample is exactly the
    /// set of items with the `k` smallest keys seen so far.
    pub key: f64,
}

impl SampleItem {
    /// Reassemble from the reservoir's key/value representation.
    pub fn from_entry(key: &SampleKey, weight: f64) -> Self {
        SampleItem {
            id: key.id,
            weight,
            key: key.key,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_entry_copies_fields() {
        let k = SampleKey::new(0.25, 77);
        let s = SampleItem::from_entry(&k, 3.5);
        assert_eq!(s.id, 77);
        assert_eq!(s.weight, 3.5);
        assert_eq!(s.key, 0.25);
    }
}
