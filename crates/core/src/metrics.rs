//! Per-phase running-time accounting (paper Section 6.5).
//!
//! The paper decomposes each algorithm's running time into **insert**
//! (local batch processing), **select** (distributed or sequential
//! selection), **threshold** (the final all-reduction / broadcast of the
//! new threshold) and — for the centralized baseline — **gather**. Both
//! backends fill the same structure: the threaded backend from wall-clock
//! measurements, the simulator from its cost model.

/// Accumulated seconds per algorithm phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    /// Local batch processing: jump scans and reservoir insertions.
    pub insert: f64,
    /// Finding the new global threshold (distributed selection, or the
    /// root's sequential selection in the gathering baseline).
    pub select: f64,
    /// Distributing / agreeing on the new threshold.
    pub threshold: f64,
    /// Collecting candidates at the root (centralized baseline only).
    pub gather: f64,
}

impl PhaseTimes {
    /// Total across phases.
    pub fn total(&self) -> f64 {
        self.insert + self.select + self.threshold + self.gather
    }

    /// Elementwise accumulation.
    pub fn accumulate(&mut self, other: &PhaseTimes) {
        self.insert += other.insert;
        self.select += other.select;
        self.threshold += other.threshold;
        self.gather += other.gather;
    }

    /// Fractions of the total per phase (insert, select, threshold,
    /// gather); all zeros for an empty accumulator.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total();
        if t == 0.0 {
            return [0.0; 4];
        }
        [
            self.insert / t,
            self.select / t,
            self.threshold / t,
            self.gather / t,
        ]
    }
}

impl std::ops::Add for PhaseTimes {
    type Output = PhaseTimes;
    fn add(mut self, rhs: PhaseTimes) -> PhaseTimes {
        self.accumulate(&rhs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let t = PhaseTimes {
            insert: 2.0,
            select: 1.0,
            threshold: 0.5,
            gather: 0.5,
        };
        assert_eq!(t.total(), 4.0);
        let f = t.fractions();
        assert_eq!(f, [0.5, 0.25, 0.125, 0.125]);
    }

    #[test]
    fn accumulate_adds_elementwise() {
        let mut a = PhaseTimes::default();
        a.accumulate(&PhaseTimes {
            insert: 1.0,
            ..Default::default()
        });
        let b = a + PhaseTimes {
            select: 2.0,
            ..Default::default()
        };
        assert_eq!(b.insert, 1.0);
        assert_eq!(b.select, 2.0);
        assert_eq!(PhaseTimes::default().fractions(), [0.0; 4]);
    }
}
