//! Per-phase running-time accounting (paper Sections 5 and 6.5).
//!
//! The paper decomposes each algorithm's running time into **insert**
//! (local batch processing), **select** (distributed or sequential
//! selection), **threshold** (the final all-reduction / broadcast of the
//! new threshold), **output** (Section 5 sample finalization and output
//! collection) and — for the centralized baseline — **gather**. Both
//! backends fill the same structure: the threaded backend from wall-clock
//! measurements, the simulator from its cost model.

/// Accumulated seconds per algorithm phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    /// Waiting on the ingestion channel for the next mini-batch (pipeline
    /// drivers only; zero when batches are handed in directly). A large
    /// value means the front door, not the sampler, limits throughput.
    pub ingest: f64,
    /// Local batch processing: jump scans and reservoir insertions.
    pub insert: f64,
    /// Finding the new global threshold (distributed selection, or the
    /// root's sequential selection in the gathering baseline).
    pub select: f64,
    /// Distributing / agreeing on the new threshold.
    pub threshold: f64,
    /// Collecting candidates at the root (centralized baseline only).
    pub gather: f64,
    /// Output collection (Section 5): final top-k finalization plus the
    /// prefix counts that assign every PE its slice of the global sample.
    pub output: f64,
    /// Seconds the busiest worker spent jump-scanning inside the parallel
    /// region of the insert phase (`threads_per_pe > 1` only; 0 on the
    /// sequential path). This time *overlaps* `insert` wall-clock time, so
    /// it is excluded from [`Self::total`] and [`Self::fractions`] — use
    /// `par_scan / insert` as the parallel region's share of the insert
    /// phase.
    pub par_scan: f64,
}

impl PhaseTimes {
    /// Total across the disjoint wall-clock phases (`par_scan` overlaps
    /// `insert` and is not added again).
    pub fn total(&self) -> f64 {
        self.ingest + self.insert + self.select + self.threshold + self.gather + self.output
    }

    /// Elementwise accumulation.
    pub fn accumulate(&mut self, other: &PhaseTimes) {
        self.ingest += other.ingest;
        self.insert += other.insert;
        self.select += other.select;
        self.threshold += other.threshold;
        self.gather += other.gather;
        self.output += other.output;
        self.par_scan += other.par_scan;
    }

    /// Each disjoint wall-clock phase's share of [`Self::total`], by
    /// name; all zeros for an empty accumulator. `par_scan` has **no**
    /// fraction: it measures the busiest worker *inside* the `insert`
    /// phase's parallel region, so its seconds overlap `insert` and
    /// adding a seventh share would push the sum past 1. Compute
    /// `par_scan / insert` from the [`PhaseTimes`] fields instead when
    /// the parallel region's share of the insert phase is wanted.
    pub fn fractions(&self) -> PhaseFractions {
        let t = self.total();
        if t == 0.0 {
            return PhaseFractions::default();
        }
        PhaseFractions {
            ingest: self.ingest / t,
            insert: self.insert / t,
            select: self.select / t,
            threshold: self.threshold / t,
            gather: self.gather / t,
            output: self.output / t,
        }
    }

    /// Elementwise difference against an earlier snapshot of the same
    /// accumulator — the time spent per phase *since* that snapshot (e.g.
    /// the share of a sampler's totals attributable to one pipeline run).
    pub fn delta_since(&self, earlier: &PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            ingest: self.ingest - earlier.ingest,
            insert: self.insert - earlier.insert,
            select: self.select - earlier.select,
            threshold: self.threshold - earlier.threshold,
            gather: self.gather - earlier.gather,
            output: self.output - earlier.output,
            par_scan: self.par_scan - earlier.par_scan,
        }
    }

    /// Elementwise division by a scalar (e.g. to average over batches).
    pub fn scaled(&self, divisor: f64) -> PhaseTimes {
        PhaseTimes {
            ingest: self.ingest / divisor,
            insert: self.insert / divisor,
            select: self.select / divisor,
            threshold: self.threshold / divisor,
            gather: self.gather / divisor,
            output: self.output / divisor,
            par_scan: self.par_scan / divisor,
        }
    }
}

/// Named per-phase shares of a [`PhaseTimes`] total, as returned by
/// [`PhaseTimes::fractions`]. The six fields are the *disjoint* wall-clock
/// phases and sum to 1 for a non-empty accumulator; the overlapping
/// `par_scan` time is deliberately absent (see [`PhaseTimes::fractions`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseFractions {
    pub ingest: f64,
    pub insert: f64,
    pub select: f64,
    pub threshold: f64,
    pub gather: f64,
    pub output: f64,
}

impl PhaseFractions {
    /// Labeled `(phase, share)` pairs in the canonical reporting order —
    /// for callers that want to iterate without hard-coding positions.
    pub fn labeled(&self) -> [(&'static str, f64); 6] {
        [
            ("ingest", self.ingest),
            ("insert", self.insert),
            ("select", self.select),
            ("threshold", self.threshold),
            ("gather", self.gather),
            ("output", self.output),
        ]
    }

    /// Sum of the six shares: 1 for a non-empty accumulator, 0 otherwise.
    pub fn sum(&self) -> f64 {
        self.ingest + self.insert + self.select + self.threshold + self.gather + self.output
    }
}

impl std::ops::Add for PhaseTimes {
    type Output = PhaseTimes;
    fn add(mut self, rhs: PhaseTimes) -> PhaseTimes {
        self.accumulate(&rhs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let t = PhaseTimes {
            ingest: 4.0,
            insert: 2.0,
            select: 1.0,
            threshold: 0.5,
            gather: 0.25,
            output: 0.25,
            // Overlaps insert: must not show up in total or fractions.
            par_scan: 1.5,
        };
        assert_eq!(t.total(), 8.0);
        let f = t.fractions();
        assert_eq!(
            f,
            PhaseFractions {
                ingest: 0.5,
                insert: 0.25,
                select: 0.125,
                threshold: 0.0625,
                gather: 0.03125,
                output: 0.03125,
            }
        );
        assert_eq!(f.sum(), 1.0);
        assert_eq!(f.labeled()[0], ("ingest", 0.5));
        assert_eq!(f.labeled()[5], ("output", 0.03125));
    }

    #[test]
    fn accumulate_adds_elementwise() {
        let mut a = PhaseTimes::default();
        a.accumulate(&PhaseTimes {
            insert: 1.0,
            ..Default::default()
        });
        let b = a + PhaseTimes {
            select: 2.0,
            ..Default::default()
        };
        assert_eq!(b.insert, 1.0);
        assert_eq!(b.select, 2.0);
        assert_eq!(PhaseTimes::default().fractions(), PhaseFractions::default());
        assert_eq!(PhaseTimes::default().fractions().sum(), 0.0);
    }

    #[test]
    fn delta_since_subtracts_elementwise() {
        let earlier = PhaseTimes {
            ingest: 1.0,
            insert: 2.0,
            ..Default::default()
        };
        let mut later = earlier;
        later.accumulate(&PhaseTimes {
            ingest: 0.5,
            select: 3.0,
            par_scan: 0.25,
            ..Default::default()
        });
        let d = later.delta_since(&earlier);
        assert_eq!(d.ingest, 0.5);
        assert_eq!(d.insert, 0.0);
        assert_eq!(d.select, 3.0);
        assert_eq!(d.par_scan, 0.25);
        assert_eq!(d.total(), 3.5);
    }

    #[test]
    fn scaled_divides_every_phase() {
        let t = PhaseTimes {
            ingest: 1.0,
            insert: 2.0,
            select: 4.0,
            threshold: 6.0,
            gather: 8.0,
            output: 10.0,
            par_scan: 12.0,
        };
        let half = t.scaled(2.0);
        assert_eq!(half.insert, 1.0);
        assert_eq!(half.output, 5.0);
        assert_eq!(half.par_scan, 6.0);
        assert_eq!(half.total(), t.total() / 2.0);
    }
}
