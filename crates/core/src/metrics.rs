//! Per-phase running-time accounting (paper Sections 5 and 6.5).
//!
//! The paper decomposes each algorithm's running time into **insert**
//! (local batch processing), **select** (distributed or sequential
//! selection), **threshold** (the final all-reduction / broadcast of the
//! new threshold), **output** (Section 5 sample finalization and output
//! collection) and — for the centralized baseline — **gather**. Both
//! backends fill the same structure: the threaded backend from wall-clock
//! measurements, the simulator from its cost model.

/// Accumulated seconds per algorithm phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    /// Local batch processing: jump scans and reservoir insertions.
    pub insert: f64,
    /// Finding the new global threshold (distributed selection, or the
    /// root's sequential selection in the gathering baseline).
    pub select: f64,
    /// Distributing / agreeing on the new threshold.
    pub threshold: f64,
    /// Collecting candidates at the root (centralized baseline only).
    pub gather: f64,
    /// Output collection (Section 5): final top-k finalization plus the
    /// prefix counts that assign every PE its slice of the global sample.
    pub output: f64,
}

impl PhaseTimes {
    /// Total across phases.
    pub fn total(&self) -> f64 {
        self.insert + self.select + self.threshold + self.gather + self.output
    }

    /// Elementwise accumulation.
    pub fn accumulate(&mut self, other: &PhaseTimes) {
        self.insert += other.insert;
        self.select += other.select;
        self.threshold += other.threshold;
        self.gather += other.gather;
        self.output += other.output;
    }

    /// Fractions of the total per phase (insert, select, threshold,
    /// gather, output); all zeros for an empty accumulator.
    pub fn fractions(&self) -> [f64; 5] {
        let t = self.total();
        if t == 0.0 {
            return [0.0; 5];
        }
        [
            self.insert / t,
            self.select / t,
            self.threshold / t,
            self.gather / t,
            self.output / t,
        ]
    }

    /// Elementwise division by a scalar (e.g. to average over batches).
    pub fn scaled(&self, divisor: f64) -> PhaseTimes {
        PhaseTimes {
            insert: self.insert / divisor,
            select: self.select / divisor,
            threshold: self.threshold / divisor,
            gather: self.gather / divisor,
            output: self.output / divisor,
        }
    }
}

impl std::ops::Add for PhaseTimes {
    type Output = PhaseTimes;
    fn add(mut self, rhs: PhaseTimes) -> PhaseTimes {
        self.accumulate(&rhs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let t = PhaseTimes {
            insert: 2.0,
            select: 1.0,
            threshold: 0.5,
            gather: 0.25,
            output: 0.25,
        };
        assert_eq!(t.total(), 4.0);
        let f = t.fractions();
        assert_eq!(f, [0.5, 0.25, 0.125, 0.0625, 0.0625]);
    }

    #[test]
    fn accumulate_adds_elementwise() {
        let mut a = PhaseTimes::default();
        a.accumulate(&PhaseTimes {
            insert: 1.0,
            ..Default::default()
        });
        let b = a + PhaseTimes {
            select: 2.0,
            ..Default::default()
        };
        assert_eq!(b.insert, 1.0);
        assert_eq!(b.select, 2.0);
        assert_eq!(PhaseTimes::default().fractions(), [0.0; 5]);
    }

    #[test]
    fn scaled_divides_every_phase() {
        let t = PhaseTimes {
            insert: 2.0,
            select: 4.0,
            threshold: 6.0,
            gather: 8.0,
            output: 10.0,
        };
        let half = t.scaled(2.0);
        assert_eq!(half.insert, 1.0);
        assert_eq!(half.output, 5.0);
        assert_eq!(half.total(), t.total() / 2.0);
    }
}
