//! Statistical goodness-of-fit: the exponential-jump sampler and the naive
//! key-per-item sampler must produce *identically distributed* samples
//! (paper Section 4.1 — the jumps are a pure speedup, not an
//! approximation).
//!
//! Over many independent trials on a skewed weight distribution, the
//! per-item inclusion counts of both samplers form two multinomial draws
//! from (supposedly) the same inclusion law. A two-sample chi-square
//! statistic over all items then follows a χ² distribution with n−1
//! degrees of freedom; we assert it stays below a generous high quantile,
//! and run a positive control to show the statistic *does* explode when
//! the law actually differs.

use reservoir_core::seq::{WeightedJumpSampler, WeightedNaiveSampler};
use reservoir_rng::{default_rng, test_base_seed};

/// A strongly skewed weight profile: geometric decay over items, spanning
/// three orders of magnitude, with a few heavy hitters up front.
fn skewed_weight(i: u64) -> f64 {
    1000.0 * 0.9f64.powi((i % 60) as i32) + 0.5
}

/// Per-item inclusion counts over `trials` runs of a sampler.
fn inclusion_counts(n: u64, k: usize, trials: u64, naive: bool, seed_base: u64) -> Vec<u64> {
    let mut counts = vec![0u64; n as usize];
    for t in 0..trials {
        let rng = default_rng(seed_base + t);
        if naive {
            let mut s = WeightedNaiveSampler::new(k, rng);
            for i in 0..n {
                s.process(i, skewed_weight(i));
            }
            for item in s.sample() {
                counts[item.id as usize] += 1;
            }
        } else {
            let mut s = WeightedJumpSampler::new(k, rng);
            for i in 0..n {
                s.process(i, skewed_weight(i));
            }
            for item in s.sample() {
                counts[item.id as usize] += 1;
            }
        }
    }
    counts
}

/// Two-sample chi-square statistic between equal-trial count vectors:
/// Σ (a_i − b_i)² / (a_i + b_i) over items with a_i + b_i > 0.
///
/// Under H₀ (same inclusion law) this is asymptotically χ²(df) with
/// df = #used items − 1.
fn two_sample_chi_square(a: &[u64], b: &[u64]) -> (f64, usize) {
    assert_eq!(a.len(), b.len());
    let mut stat = 0.0;
    let mut df = 0usize;
    for (&x, &y) in a.iter().zip(b) {
        let total = x + y;
        if total == 0 {
            continue;
        }
        let diff = x as f64 - y as f64;
        stat += diff * diff / total as f64;
        df += 1;
    }
    (stat, df.saturating_sub(1))
}

/// Normal-approximation upper quantile of χ²(df): df + z·√(2df) + z²·2/3.
/// With z = 4 the false-failure probability is ≈ 3e-5.
fn chi_square_upper(df: usize, z: f64) -> f64 {
    let df = df as f64;
    df + z * (2.0 * df).sqrt() + z * z * 2.0 / 3.0
}

#[test]
fn jump_and_naive_samplers_have_matching_inclusion_law() {
    let n = 120u64;
    let k = 12;
    let trials = 12_000u64;
    let base = test_base_seed();
    let jump = inclusion_counts(n, k, trials, false, base.wrapping_add(1_000_000));
    let naive = inclusion_counts(n, k, trials, true, base.wrapping_add(9_000_000));
    // Sanity: both produced exactly k members per trial.
    assert_eq!(jump.iter().sum::<u64>(), trials * k as u64);
    assert_eq!(naive.iter().sum::<u64>(), trials * k as u64);
    // Heavy items must dominate light ones in both (weights span 1000x).
    assert!(jump[0] > jump[59] * 3, "{} vs {}", jump[0], jump[59]);
    let (stat, df) = two_sample_chi_square(&jump, &naive);
    let limit = chi_square_upper(df, 4.0);
    assert!(
        stat < limit,
        "chi-square {stat:.1} exceeds χ²({df}) limit {limit:.1}: \
         jump and naive inclusion laws differ (base seed {base}; \
         set RESERVOIR_TEST_SEED to reproduce/vary)"
    );
}

#[test]
fn chi_square_detects_a_genuinely_different_law() {
    // Positive control: sampling k=12 vs k=14 of the same stream must blow
    // far past the same limit — otherwise the statistic has no power.
    let n = 120u64;
    let trials = 6_000u64;
    let base = test_base_seed();
    let a = inclusion_counts(n, 12, trials, false, base.wrapping_add(3_000_000));
    let b = inclusion_counts(n, 14, trials, false, base.wrapping_add(5_000_000));
    let (stat, df) = two_sample_chi_square(&a, &b);
    let limit = chi_square_upper(df, 4.0);
    assert!(
        stat > limit,
        "control failed: {stat:.1} should exceed {limit:.1} for different laws \
         (base seed {base})"
    );
}
