//! Experiment runner and table formatting shared by the figure binaries.

use reservoir_comm::CostModel;
use reservoir_core::dist::sim::{LocalCostModel, SimAlgo, SimCluster, SimConfig};
use reservoir_core::dist::SamplingMode;
use reservoir_core::metrics::PhaseTimes;

/// The paper's node grid (x axes of Figures 3–6); 20 PEs per node.
pub const NODE_GRID: [usize; 5] = [1, 4, 16, 64, 256];

/// PEs (MPI ranks) per node on ForHLR II.
pub const PES_PER_NODE: usize = 20;

/// Aggregated outcome of one simulated configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentResult {
    /// Mean modeled wall time per mini-batch (seconds).
    pub per_batch_s: f64,
    /// Mean per-batch phase decomposition.
    pub phases: PhaseTimes,
    /// Mean selection rounds per batch **where selection ran** (the
    /// paper's "average recursion depth").
    pub avg_rounds: f64,
    /// Global items consumed per second of modeled time.
    pub throughput: f64,
    /// Throughput per PE (the y axis of Figure 5).
    pub throughput_per_pe: f64,
    /// Mini-batches completed in the window.
    pub batches: u64,
}

/// Run one configuration the way the paper runs its experiments: for a
/// fixed window of (simulated) wall time, "completing as many mini-batches
/// as possible in that time" (Section 6.1), then report window averages.
/// `max_batches` caps the simulation effort for configurations whose
/// batches are very fast; by then the per-batch behaviour is stationary,
/// so the average is unaffected.
pub fn run_sim_experiment<L: LocalCostModel>(
    cfg: SimConfig,
    net: CostModel,
    costs: L,
    window_s: f64,
    max_batches: u64,
) -> ExperimentResult {
    assert!(window_s > 0.0 && max_batches > 0);
    let mut sim = SimCluster::new(cfg, net, costs);
    let mut total = 0.0;
    let mut phases = PhaseTimes::default();
    let mut rounds = 0u64;
    let mut selections = 0u64;
    let mut batches = 0u64;
    while total < window_s && batches < max_batches {
        let r = sim.process_batch();
        total += r.times.total();
        phases.accumulate(&r.times);
        if r.rounds > 0 {
            rounds += r.rounds as u64;
            selections += 1;
        }
        batches += 1;
    }
    let per_batch = total / batches as f64;
    let items_per_batch = (cfg.p as u64 * cfg.b_per_pe) as f64;
    let phases_avg = phases.scaled(batches as f64);
    ExperimentResult {
        per_batch_s: per_batch,
        phases: phases_avg,
        avg_rounds: if selections > 0 {
            rounds as f64 / selections as f64
        } else {
            0.0
        },
        throughput: items_per_batch / per_batch,
        throughput_per_pe: items_per_batch / per_batch / cfg.p as f64,
        batches,
    }
}

/// Convenience constructor for the paper's weighted-sampling configs
/// (single-threaded PEs; chain [`SimConfig::with_threads`] for multicore
/// or [`SimConfig::with_size_window`] for the variable-size variant).
pub fn sim_config(nodes: usize, k: usize, b_per_pe: u64, algo: SimAlgo, seed: u64) -> SimConfig {
    SimConfig::new(
        nodes * PES_PER_NODE,
        k,
        b_per_pe,
        SamplingMode::Weighted,
        algo,
        seed,
    )
}

/// Human-readable algorithm label matching the paper's legends.
pub fn algo_label(algo: SimAlgo) -> String {
    match algo {
        SimAlgo::Ours { pivots: 1 } => "ours".into(),
        SimAlgo::Ours { pivots } => format!("ours-{pivots}"),
        SimAlgo::Gather => "gather".into(),
    }
}

/// Format a value grid as a markdown table: rows = node counts,
/// columns = series labels.
pub fn format_table(
    title: &str,
    col_labels: &[String],
    rows: &[(usize, Vec<f64>)],
    precision: usize,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "\n### {title}\n");
    let _ = write!(out, "| nodes |");
    for l in col_labels {
        let _ = write!(out, " {l} |");
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|");
    for _ in col_labels {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out);
    for (nodes, vals) in rows {
        let _ = write!(out, "| {nodes} |");
        for v in vals {
            let _ = write!(out, " {v:.precision$} |");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use reservoir_core::dist::sim::AnalyticLocalCosts;

    #[test]
    fn experiment_runner_produces_sane_numbers() {
        let cfg = sim_config(1, 1_000, 10_000, SimAlgo::Ours { pivots: 1 }, 7);
        let res = run_sim_experiment(
            cfg,
            CostModel::infiniband_edr(),
            AnalyticLocalCosts::default(),
            0.05,
            50,
        );
        assert!(res.per_batch_s > 0.0);
        assert!(res.throughput > 0.0);
        assert!(res.throughput_per_pe * cfg.p as f64 - res.throughput < 1e-6);
        let f = res.phases.fractions();
        assert!((f.sum() - 1.0).abs() < 1e-9);
        assert!(f.labeled().iter().all(|&(_, share)| share >= 0.0));
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(algo_label(SimAlgo::Ours { pivots: 1 }), "ours");
        assert_eq!(algo_label(SimAlgo::Ours { pivots: 8 }), "ours-8");
        assert_eq!(algo_label(SimAlgo::Gather), "gather");
    }

    #[test]
    fn table_formatting() {
        let t = format_table(
            "demo",
            &["a".into(), "b".into()],
            &[(1, vec![1.0, 2.0]), (4, vec![3.0, 4.0])],
            1,
        );
        assert!(t.contains("| 1 | 1.0 | 2.0 |"));
        assert!(t.contains("### demo"));
    }
}
