//! Machine calibration: measure the local-work costs the cluster simulator
//! charges, on the machine the benchmarks actually run on.
//!
//! The paper's experiments measure wall-clock time on ForHLR II nodes; our
//! simulator separates *local* work (measured here, for real, on this CPU)
//! from *communication* (charged through the α–β model). Calibration takes
//! a couple of seconds and is run once per benchmark binary.

use std::time::Instant;

use reservoir_btree::{BPlusTree, SampleKey};
use reservoir_core::dist::local::LocalReservoir;
use reservoir_core::dist::sim::{amdahl_speedup, LocalCostModel};
use reservoir_par::ParLocalReservoir;
use reservoir_rng::{default_rng, Rng64};
use reservoir_select::kth_smallest;
use reservoir_stream::Item;

/// Measured per-operation costs with a piecewise scan-cost table
/// (log-linear interpolation over batch size, capturing the cache knee).
#[derive(Clone, Debug)]
pub struct MeasuredLocalCosts {
    /// `(batch_items, seconds_per_item)`, ascending in `batch_items`.
    pub scan_table: Vec<(u64, f64)>,
    /// Seconds per tree insert per log₂(tree size).
    pub insert_s: f64,
    /// Seconds per generated candidate key.
    pub keygen_s: f64,
    /// Seconds per element of a sequential quickselect.
    pub quickselect_s: f64,
    /// Seconds per rank query per log₂(tree size).
    pub rank_s: f64,
    /// Measured serial fraction of the parallel local scan (inverse-Amdahl
    /// fit of a real `ParLocalReservoir` run against the sequential scan
    /// on this machine; 1.0 when the host has a single core, i.e. no
    /// speedup available).
    pub par_serial_frac: f64,
    /// The thread count the serial fraction was measured at (0 when the
    /// probe was skipped on a single-core host).
    pub par_probe_threads: u64,
}

impl MeasuredLocalCosts {
    fn scan_per_item(&self, items: u64) -> f64 {
        let t = &self.scan_table;
        debug_assert!(!t.is_empty());
        if items <= t[0].0 {
            return t[0].1;
        }
        for w in t.windows(2) {
            let ((a, ca), (b, cb)) = (w[0], w[1]);
            if items <= b {
                // Interpolate linearly in log(items).
                let f =
                    ((items as f64).ln() - (a as f64).ln()) / ((b as f64).ln() - (a as f64).ln());
                return ca + f * (cb - ca);
            }
        }
        t.last().expect("nonempty").1
    }
}

impl LocalCostModel for MeasuredLocalCosts {
    fn scan_weighted(&self, items: u64) -> f64 {
        items as f64 * self.scan_per_item(items)
    }

    fn scan_uniform(&self, inserted: u64) -> f64 {
        20e-9 + inserted as f64 * self.keygen_s
    }

    fn tree_inserts(&self, count: u64, tree_size: u64) -> f64 {
        count as f64 * self.insert_s * ((tree_size + 2) as f64).log2()
    }

    fn keygen(&self, count: u64) -> f64 {
        count as f64 * self.keygen_s
    }

    fn quickselect(&self, n: u64) -> f64 {
        n as f64 * self.quickselect_s
    }

    fn select_round_local(&self, tree_size: u64, pivots: u64) -> f64 {
        pivots.max(1) as f64 * self.rank_s * ((tree_size + 2) as f64).log2()
    }

    fn scan_speedup(&self, threads: u64) -> f64 {
        amdahl_speedup(self.par_serial_frac, threads)
    }
}

fn time<F: FnMut()>(mut f: F, reps: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Measure this machine's costs. `quick` halves the probe sizes (used by
/// tests); benchmarks pass `false`.
pub fn calibrate(quick: bool) -> MeasuredLocalCosts {
    let mut rng = default_rng(0xCA11B);

    // --- Jump-scan cost across batch sizes (captures the cache knee) ----
    let sizes: &[u64] = if quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 400_000, 1_000_000, 4_000_000]
    };
    let mut scan_table = Vec::with_capacity(sizes.len());
    for &b in sizes {
        let items: Vec<Item> = (0..b)
            .map(|i| Item::new(i, rng.rand_oc() * 100.0))
            .collect();
        // A tiny threshold makes insertions negligible: we time the scan.
        let mut reservoir = LocalReservoir::new(8, 32);
        let reps = if b <= 100_000 { 8 } else { 2 };
        let mut scan_rng = default_rng(1);
        // Warm the cache/branch predictors before timing.
        let _ = reservoir.process_weighted(&items, Some(1e-7), &mut scan_rng);
        let per = time(
            || {
                let _ = reservoir.process_weighted(&items, Some(1e-7), &mut scan_rng);
            },
            reps,
        ) / b as f64;
        scan_table.push((b, per));
    }

    // --- Tree insertion cost ------------------------------------------
    let tree_size = if quick { 20_000 } else { 100_000 };
    let mut tree: BPlusTree<SampleKey, f64> = BPlusTree::new();
    for i in 0..tree_size {
        tree.insert(SampleKey::new(rng.rand_oc(), i), 1.0);
    }
    let inserts = if quick { 10_000 } else { 50_000 };
    let start = Instant::now();
    for i in 0..inserts {
        tree.insert(SampleKey::new(rng.rand_oc(), tree_size + i), 1.0);
    }
    let insert_s = start.elapsed().as_secs_f64() / inserts as f64 / ((tree_size + 2) as f64).log2();

    // --- Key generation cost ------------------------------------------
    let n = 200_000u64;
    let mut sink = 0.0f64;
    let keygen_s = time(
        || {
            for _ in 0..n {
                sink += rng.exponential(2.0);
            }
        },
        1,
    ) / n as f64;
    std::hint::black_box(sink);

    // --- Sequential quickselect cost -----------------------------------
    let m = if quick { 50_000 } else { 200_000 };
    let keys: Vec<SampleKey> = (0..m)
        .map(|i| SampleKey::new(rng.rand_oc(), i as u64))
        .collect();
    let mut qs_rng = default_rng(2);
    // Subtract the buffer-copy cost so only the selection itself is charged.
    let clone_s = time(
        || {
            std::hint::black_box(keys.clone());
        },
        4,
    );
    let quickselect_s = (time(
        || {
            let mut work = keys.clone();
            std::hint::black_box(kth_smallest(&mut work, m / 10, &mut qs_rng));
        },
        4,
    ) - clone_s)
        .max(1e-12 * m as f64)
        / m as f64;

    // --- Parallel-scan serial fraction ---------------------------------
    // Time the real chunked scan (reservoir-par) against the sequential
    // scan on the same batch and invert Amdahl's law:
    //   S(t) = 1 / (s + (1-s)/t)  ⇒  s = (t/S - 1) / (t - 1).
    // Always measure rather than consult `available_parallelism`:
    // container CPU quotas routinely report one core while still running
    // threads concurrently, and a genuinely serial host simply measures
    // S ≈ 1 and records s ≈ 1.
    let probe_threads = 4u64;
    let (par_serial_frac, par_probe_threads) = {
        // Big enough that the per-scope worker spawn cost (~100 µs)
        // amortizes — the regime the knob is for; smaller batches stay on
        // the sequential path anyway.
        let b = if quick { 1_000_000u64 } else { 4_000_000 };
        let items: Vec<Item> = (0..b)
            .map(|i| Item::new(i, rng.rand_oc() * 100.0))
            .collect();
        let reps = if quick { 3 } else { 5 };
        let mut seq_res = LocalReservoir::new(8, 32);
        let mut seq_rng = default_rng(3);
        let _ = seq_res.process_weighted(&items, Some(1e-7), &mut seq_rng);
        let seq_s = time(
            || {
                let _ = seq_res.process_weighted(&items, Some(1e-7), &mut seq_rng);
            },
            reps,
        );
        let mut par_res = ParLocalReservoir::new(8, 32, probe_threads as usize, 3);
        let _ = par_res.process_weighted(&items, Some(1e-7));
        let par_s = time(
            || {
                let _ = par_res.process_weighted(&items, Some(1e-7));
            },
            reps,
        );
        let t = probe_threads as f64;
        let speedup = (seq_s / par_s).max(1e-6);
        let s = ((t / speedup - 1.0) / (t - 1.0)).clamp(0.0, 1.0);
        (s, probe_threads)
    };

    // --- Rank-query cost -----------------------------------------------
    let probes = 20_000u64;
    let mut acc = 0usize;
    let rank_s = time(
        || {
            for _ in 0..probes {
                let key = SampleKey::new(rng.rand_oc(), 0);
                acc += tree.count_le(&key);
            }
        },
        1,
    ) / probes as f64
        / ((tree_size + 2) as f64).log2();
    std::hint::black_box(acc);

    MeasuredLocalCosts {
        scan_table,
        insert_s,
        keygen_s,
        quickselect_s,
        rank_s,
        par_serial_frac,
        par_probe_threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_yields_positive_costs() {
        let c = calibrate(true);
        assert!(c.scan_table.iter().all(|&(_, s)| s > 0.0 && s < 1e-6));
        assert!(c.insert_s > 0.0 && c.insert_s < 1e-4);
        assert!(c.keygen_s > 0.0);
        assert!(c.quickselect_s > 0.0);
        assert!(c.rank_s > 0.0);
        assert!((0.0..=1.0).contains(&c.par_serial_frac));
        // The derived speedup model is well-formed whatever the host.
        let s4 = c.scan_speedup(4);
        assert!((1.0..=4.0).contains(&s4), "{s4}");
        assert_eq!(c.scan_speedup(1), 1.0);
    }

    #[test]
    fn scan_interpolation_monotone_in_bounds() {
        let c = MeasuredLocalCosts {
            scan_table: vec![(10_000, 1e-9), (1_000_000, 3e-9)],
            insert_s: 1e-8,
            keygen_s: 1e-8,
            quickselect_s: 1e-8,
            rank_s: 1e-8,
            par_serial_frac: 0.1,
            par_probe_threads: 4,
        };
        assert_eq!(c.scan_per_item(1_000), 1e-9);
        assert_eq!(c.scan_per_item(10_000_000), 3e-9);
        let mid = c.scan_per_item(100_000);
        assert!(mid > 1e-9 && mid < 3e-9);
        // Total scan time grows with batch size.
        assert!(c.scan_weighted(1_000_000) > c.scan_weighted(10_000));
    }
}
