//! Multi-tenant sharded sampling on the real threaded backend: one
//! [`ShardedSampler`] fleet (S per-key reservoirs behind one collective
//! schedule) against S independent [`DistributedSampler`]s over the same
//! routed buckets, swept over fleet sizes. The fleet pays one batched
//! count round and one *joint* selection round sequence per mini-batch;
//! the independent samplers pay a count and a full selection per shard —
//! the collective-launch gap is the tentpole claim, measured here on real
//! threads (wall time) and in launch counts (exact, from the reports).
//!
//! Emits a human-readable table on stdout and a machine-readable
//! `BENCH_sharded.json` (override the path with `RESERVOIR_BENCH_OUT`) —
//! CI uploads it as a non-gating artifact. Honours
//! `RESERVOIR_BENCH_QUICK=1` for a reduced sweep.

use std::fmt::Write as _;
use std::time::Instant;

use reservoir_comm::run_threads;
use reservoir_core::dist::threaded::DistributedSampler;
use reservoir_core::dist::{DistConfig, ShardedSampler};
use reservoir_stream::{route_by_id, Item};

/// PEs in the threaded cluster.
const P: usize = 4;
/// Per-shard sample size.
const K: usize = 32;

struct Sweep {
    shards: usize,
    /// Mean wall seconds per superstep, fleet (batched schedule).
    fleet_batch_s: f64,
    /// Mean wall seconds per superstep, S independent samplers.
    solo_batch_s: f64,
    /// Vectorized collective calls per superstep (fleet).
    fleet_collectives: f64,
    /// Collective launches per superstep the independent samplers pay:
    /// one count per shard + 2 per per-shard selection round.
    solo_collectives: f64,
    /// Joint selection rounds per superstep (max over active shards).
    joint_rounds: f64,
    /// Summed per-shard selection rounds per superstep.
    solo_rounds: f64,
}

fn items_for(rank: usize, batch: u64, per_pe: u64) -> Vec<Item> {
    (0..per_pe)
        .map(|i| {
            let seq = batch * per_pe + i;
            let id = ((rank as u64) << 40) | seq;
            Item::new(id, 0.5 + (seq % 97) as f64)
        })
        .collect()
}

fn main() {
    // Arm observability so the emitted JSON carries the run's full
    // metrics snapshot next to the measured sweep.
    reservoir_obs::set_enabled(true);
    let quick = std::env::var_os("RESERVOIR_BENCH_QUICK").is_some();
    let per_pe: u64 = if quick { 2_000 } else { 10_000 };
    let batches: u64 = if quick { 4 } else { 8 };
    let shard_grid: &[usize] = if quick { &[1, 8, 32] } else { &[1, 4, 16, 64] };

    let mut sweep = Vec::new();
    for &shards in shard_grid {
        // Fleet: one batched schedule for all shards.
        let fleet = run_threads(P, move |comm| {
            let router = route_by_id(shards);
            let mut fleet = ShardedSampler::new(&comm, DistConfig::weighted(K, 0xF1EE7), shards);
            let mut buckets: Vec<Vec<Item>> = vec![Vec::new(); shards];
            let mut collectives = 0u64;
            let mut joint = 0u64;
            let mut solo = 0u64;
            let start = Instant::now();
            for b in 0..batches {
                use reservoir_comm::Communicator;
                for bucket in &mut buckets {
                    bucket.clear();
                }
                router.route_into(items_for(comm.rank(), b, per_pe), &mut buckets);
                let rep = fleet.process_batch(&buckets);
                collectives += rep.collective_calls as u64;
                joint += rep.joint_select_rounds as u64;
                solo += rep.solo_select_rounds;
            }
            (start.elapsed().as_secs_f64(), collectives, joint, solo)
        });
        let (fleet_s, fleet_coll, joint, solo) = fleet[0];

        // Independent samplers: same buckets, one sampler (and thus one
        // count + one selection schedule) per shard.
        let naive = run_threads(P, move |comm| {
            let router = route_by_id(shards);
            let cfg = DistConfig::weighted(K, 0xF1EE7);
            let mut samplers: Vec<DistributedSampler<_>> = (0..shards)
                .map(|_| DistributedSampler::new(&comm, cfg))
                .collect();
            let mut buckets: Vec<Vec<Item>> = vec![Vec::new(); shards];
            let start = Instant::now();
            for b in 0..batches {
                use reservoir_comm::Communicator;
                for bucket in &mut buckets {
                    bucket.clear();
                }
                router.route_into(items_for(comm.rank(), b, per_pe), &mut buckets);
                for (s, sampler) in samplers.iter_mut().enumerate() {
                    sampler.process_batch(&buckets[s]);
                }
            }
            start.elapsed().as_secs_f64()
        });
        let solo_s = naive[0];

        let b = batches as f64;
        sweep.push(Sweep {
            shards,
            fleet_batch_s: fleet_s / b,
            solo_batch_s: solo_s / b,
            fleet_collectives: fleet_coll as f64 / b,
            solo_collectives: (shards as u64 * batches + 2 * solo) as f64 / b,
            joint_rounds: joint as f64 / b,
            solo_rounds: solo as f64 / b,
        });
    }

    // --- stdout table ---------------------------------------------------
    println!(
        "### fig_sharded — {P} PEs, k = {K} per shard, {per_pe} records/PE/batch, \
         {batches} batches"
    );
    println!(
        "\n| shards | fleet s/batch | solo s/batch | fleet coll/batch | \
         solo coll/batch | joint rounds | solo rounds |"
    );
    println!("|---|---|---|---|---|---|---|");
    for s in &sweep {
        println!(
            "| {} | {:.3e} | {:.3e} | {:.1} | {:.1} | {:.1} | {:.1} |",
            s.shards,
            s.fleet_batch_s,
            s.solo_batch_s,
            s.fleet_collectives,
            s.solo_collectives,
            s.joint_rounds,
            s.solo_rounds,
        );
    }

    // --- machine-readable trajectory ------------------------------------
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"sharded\",");
    let _ = writeln!(json, "  \"driver\": \"threaded\",");
    let _ = writeln!(json, "  \"pes\": {P},");
    let _ = writeln!(json, "  \"sample_k\": {K},");
    let _ = writeln!(json, "  \"records_per_pe_per_batch\": {per_pe},");
    let _ = writeln!(json, "  \"batches\": {batches},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"sweep\": [");
    for (i, s) in sweep.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"shards\": {}, \"fleet_batch_s\": {:.6e}, \
             \"solo_batch_s\": {:.6e}, \"fleet_collectives_per_batch\": {:.2}, \
             \"solo_collectives_per_batch\": {:.2}, \
             \"joint_rounds_per_batch\": {:.2}, \
             \"solo_rounds_per_batch\": {:.2}}}{}",
            s.shards,
            s.fleet_batch_s,
            s.solo_batch_s,
            s.fleet_collectives,
            s.solo_collectives,
            s.joint_rounds,
            s.solo_rounds,
            if i + 1 < sweep.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"obs\": {}",
        reservoir_obs::global().reader().json()
    );
    let _ = writeln!(json, "}}");

    let out = std::env::var("RESERVOIR_BENCH_OUT").unwrap_or_else(|_| "BENCH_sharded.json".into());
    std::fs::write(&out, &json).expect("write BENCH_sharded.json");
    eprintln!("wrote {out}");
}
