//! Regenerates the paper's tab recursion depth experiment. Honours
//! `RESERVOIR_BENCH_QUICK=1` for a reduced grid.

use reservoir_bench::{calibrate, figures, RunOpts};

fn main() {
    let opts = RunOpts::from_env();
    eprintln!("calibrating local cost model...");
    let costs = calibrate(opts.quick);
    eprintln!("calibration: {costs:?}");
    print!("{}", figures::recursion_depth_table(&costs, &opts));
}
