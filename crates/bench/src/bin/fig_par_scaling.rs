//! Parallel local-scan scaling through the **engine API**: real (not
//! simulated) throughput of a single-PE `ReservoirProtocol<CommBackend>`
//! batch step over 1..=8 scan threads, against the sequential
//! `LocalReservoir` jump-scan baseline, on this machine — the path every
//! production batch takes, not a bare reservoir micro-loop. Each width is
//! swept twice: with the default per-scope worker pool and with the
//! persistent crew (`DistConfig::with_persistent_pool`), whose per-batch
//! spawn count drops to zero.
//!
//! Each (threads, pool) point is additionally swept over both **merge
//! schedules**: the buffered scan epilogue and the concurrent shared-tree
//! merge (`MergeMode::Concurrent`), where workers insert into the OLC
//! tree as they scan — the single-threaded concurrent point is the
//! merge-overhead baseline the no-regression guard watches.
//!
//! Emits a human-readable table on stdout and a machine-readable
//! `BENCH_par_scan.json` (override the path with `RESERVOIR_BENCH_OUT`) —
//! the recorded perf trajectory CI uploads as a non-gating artifact. The
//! schema keeps every pre-engine field (`items_per_s`, `speedup_vs_seq`,
//! `modeled_speedup`, `steals_per_batch`, `worker_imbalance`) so the
//! trajectory stays comparable, and adds `spawns_per_batch`, the
//! `persistent` flag, and per-entry `merge_mode` + `retries_per_batch`
//! (seqlock conflicts; always 0 under the epilogue). Concurrent-merge
//! points are additionally swept with contention-aware insertion
//! (`leaf_affinity` column: key-ordered micro-batched inserts, the
//! default) on and off — watch `retries_per_batch` drop with it on.
//! Honours `RESERVOIR_BENCH_QUICK=1` for a reduced batch size.

use std::fmt::Write as _;
use std::time::Instant;

use reservoir_bench::calibrate;
use reservoir_core::dist::engine::ReservoirProtocol;
use reservoir_core::dist::local::LocalReservoir;
use reservoir_core::dist::sim::LocalCostModel;
use reservoir_core::dist::threaded::CommBackend;
use reservoir_core::dist::{DistConfig, MergeMode};
use reservoir_par::DEFAULT_CHUNK_ITEMS;
use reservoir_rng::{default_rng, Rng64};
use reservoir_stream::Item;

/// A tiny sample size keeps the engine's per-batch collectives (count +
/// occasional selection on one PE) negligible against the jump scan —
/// the paper's long-stream regime, now measured through the real step
/// sequence.
const K: usize = 8;
const MAX_THREADS: usize = 8;

struct Sweep {
    threads: usize,
    persistent: bool,
    merge: MergeMode,
    leaf_affinity: bool,
    items_per_s: f64,
    speedup_vs_seq: f64,
    steals: u64,
    spawns: u64,
    retries: u64,
    worker_imbalance: f64,
}

fn merge_name(merge: MergeMode) -> &'static str {
    match merge {
        MergeMode::Epilogue => "epilogue",
        MergeMode::Concurrent => "concurrent",
    }
}

fn time_reps(mut f: impl FnMut(), reps: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    // Arm observability so the emitted JSON carries the run's full
    // metrics snapshot next to the measured sweep.
    reservoir_obs::set_enabled(true);
    let quick = std::env::var_os("RESERVOIR_BENCH_QUICK").is_some();
    let b: u64 = if quick { 500_000 } else { 4_000_000 };
    let reps: u32 = if quick { 3 } else { 5 };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!("calibrating local cost model (for the modeled-speedup column)...");
    let costs = calibrate(quick);

    let mut rng = default_rng(0xBA5E);
    let items: Vec<Item> = (0..b)
        .map(|i| Item::new(i, rng.rand_oc() * 100.0))
        .collect();

    // Sequential baseline: the classic LocalReservoir jump scan (kept
    // identical across bench generations so speedups stay comparable).
    let mut seq = LocalReservoir::new(K, 32);
    let mut seq_rng = default_rng(1);
    let _ = seq.process_weighted(&items, Some(1e-6), &mut seq_rng);
    let seq_s = time_reps(
        || {
            let _ = seq.process_weighted(&items, Some(1e-6), &mut seq_rng);
        },
        reps,
    );
    let baseline = b as f64 / seq_s;

    let mut sweep = Vec::new();
    for threads in 1..=MAX_THREADS {
        for persistent in [false, true] {
            if threads == 1 && persistent {
                continue; // one worker has no helpers to keep alive
            }
            for merge in [MergeMode::Epilogue, MergeMode::Concurrent] {
                // Leaf affinity only exists on the concurrent path; the
                // epilogue sweeps one (ignored-default) point.
                let affinities: &[bool] = match merge {
                    MergeMode::Concurrent => &[true, false],
                    MergeMode::Epilogue => &[true],
                };
                for &leaf_affinity in affinities {
                    // One PE over the engine: every measured batch runs the
                    // full insert_scan → count → select_prune step.
                    let items_ref = &items;
                    let result = reservoir_comm::run_threads(1, move |comm| {
                        let cfg = DistConfig::weighted(K, 1)
                            .with_threads(threads)
                            .with_persistent_pool(persistent)
                            .with_merge(merge)
                            .with_leaf_affinity(leaf_affinity);
                        let mut engine = ReservoirProtocol::new(CommBackend::new(&comm, &cfg), cfg);
                        // Warm up: establishes the threshold and the crew.
                        let _ = engine.step(items_ref);
                        let mut steals = 0u64;
                        let mut spawns = 0u64;
                        let mut retries = 0u64;
                        let mut max_busy = 0.0f64;
                        let mut sum_busy = 0.0f64;
                        let per = time_reps(
                            || {
                                let report = engine.step(items_ref);
                                steals += report.scan.steals;
                                spawns += report.scan.spawns;
                                retries += report.scan.retries;
                                if let Some(par) = engine.backend().last_par_scan() {
                                    max_busy += par.max_worker_scan_s();
                                    sum_busy += par.worker_scan_s.iter().sum::<f64>();
                                }
                            },
                            reps,
                        );
                        (per, steals, spawns, retries, max_busy, sum_busy)
                    });
                    let (per, steals, spawns, retries, max_busy, sum_busy) = result[0];
                    let items_per_s = b as f64 / per;
                    sweep.push(Sweep {
                        threads,
                        persistent,
                        merge,
                        leaf_affinity,
                        items_per_s,
                        speedup_vs_seq: items_per_s / baseline,
                        steals: steals / reps as u64,
                        spawns: spawns / reps as u64,
                        retries: retries / reps as u64,
                        // max/mean worker busy time: 1.0 = perfectly balanced.
                        // One worker (the sequential path, which reports no
                        // per-worker breakdown) is trivially balanced.
                        worker_imbalance: if threads == 1 || sum_busy <= 0.0 {
                            1.0
                        } else {
                            max_busy / (sum_busy / threads as f64)
                        },
                    });
                }
            }
        }
    }

    // --- stdout table ---------------------------------------------------
    println!("### fig_par_scaling — engine batch step, weighted, b = {b}, k = {K}");
    println!(
        "host cores: {cores}; sequential baseline: {:.3e} items/s; \
         calibrated serial fraction: {:.3}",
        baseline, costs.par_serial_frac
    );
    println!(
        "\n| threads | pool | merge | affinity | items/s | speedup vs seq | modeled | steals/batch | spawns/batch | retries/batch | imbalance |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|");
    for s in &sweep {
        println!(
            "| {} | {} | {} | {} | {:.3e} | {:.2}x | {:.2}x | {} | {} | {} | {:.2} |",
            s.threads,
            if s.persistent { "crew" } else { "scope" },
            merge_name(s.merge),
            if s.leaf_affinity { "on" } else { "off" },
            s.items_per_s,
            s.speedup_vs_seq,
            costs.scan_speedup(s.threads as u64),
            s.steals,
            s.spawns,
            s.retries,
            s.worker_imbalance,
        );
    }

    // --- machine-readable trajectory ------------------------------------
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"par_scan\",");
    let _ = writeln!(json, "  \"driver\": \"engine\",");
    let _ = writeln!(json, "  \"mode\": \"weighted\",");
    let _ = writeln!(json, "  \"batch_items\": {b},");
    let _ = writeln!(json, "  \"sample_k\": {K},");
    let _ = writeln!(json, "  \"chunk_items\": {DEFAULT_CHUNK_ITEMS},");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"baseline_seq_items_per_s\": {:.6e},", baseline);
    let _ = writeln!(
        json,
        "  \"calibrated_serial_frac\": {:.6},",
        costs.par_serial_frac
    );
    let _ = writeln!(json, "  \"sweep\": [");
    for (i, s) in sweep.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"persistent\": {}, \"merge_mode\": \"{}\", \
             \"leaf_affinity\": {}, \
             \"items_per_s\": {:.6e}, \
             \"speedup_vs_seq\": {:.4}, \"modeled_speedup\": {:.4}, \
             \"steals_per_batch\": {}, \"spawns_per_batch\": {}, \
             \"retries_per_batch\": {}, \
             \"worker_imbalance\": {:.4}}}{}",
            s.threads,
            s.persistent,
            merge_name(s.merge),
            s.leaf_affinity,
            s.items_per_s,
            s.speedup_vs_seq,
            costs.scan_speedup(s.threads as u64),
            s.steals,
            s.spawns,
            s.retries,
            s.worker_imbalance,
            if i + 1 < sweep.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"obs\": {}",
        reservoir_obs::global().reader().json()
    );
    let _ = writeln!(json, "}}");

    let out = std::env::var("RESERVOIR_BENCH_OUT").unwrap_or_else(|_| "BENCH_par_scan.json".into());
    std::fs::write(&out, &json).expect("write BENCH_par_scan.json");
    eprintln!("wrote {out}");
}
