//! Section 6.1 in-text check: skewed weights (normal, mean increasing with
//! batch index and PE rank) show "no significant differences in running
//! time" versus uniform weights. Runs the *real threaded* backend at small
//! scale and compares per-batch processing times.
//!
//! All mini-batches are generated **before** timing starts (the paper:
//! "input generation is not included in the reported times") — this also
//! keeps generation cost, which does differ between the distributions,
//! from contending with the timed sections on oversubscribed machines.

use reservoir_bench::RunOpts;
use reservoir_comm::{run_threads, Communicator};
use reservoir_core::dist::threaded::DistributedSampler;
use reservoir_core::dist::DistConfig;
use reservoir_stream::{Item, StreamSpec, WeightGen};

fn mean_batch_seconds(
    p: usize,
    b: usize,
    k: usize,
    batches: usize,
    weights: WeightGen,
) -> (f64, f64, f64) {
    let spec = StreamSpec {
        pes: p,
        batch_size: b,
        weights,
        seed: 99,
    };
    let times = run_threads(p, |comm| {
        // Pre-generate every batch this PE will see.
        let mut src = spec.source_for(comm.rank());
        let all: Vec<Vec<Item>> = (0..=batches).map(|_| src.next_batch()).collect();
        let mut sampler = DistributedSampler::new(&comm, DistConfig::weighted(k, 99));
        // Warm up (first batch has no threshold yet), then time the rest
        // through the sampler's own phase accounting.
        sampler.process_batch(&all[0]);
        let before = sampler.phase_totals();
        let mut inserted = 0u64;
        let mut rounds = 0u64;
        for batch in &all[1..] {
            let r = sampler.process_batch(batch);
            inserted += r.inserted;
            rounds += r.select_rounds as u64;
        }
        let after = sampler.phase_totals();
        (
            (after.total() - before.total()) / batches as f64,
            inserted as f64 / batches as f64,
            rounds as f64 / batches as f64,
        )
    });
    let n = times.len() as f64;
    (
        times.iter().map(|t| t.0).sum::<f64>() / n,
        times.iter().map(|t| t.1).sum::<f64>() / n,
        times.iter().map(|t| t.2).sum::<f64>() / n,
    )
}

fn main() {
    let quick = RunOpts::from_env().quick;
    let (p, b, k, batches) = if quick {
        (2, 50_000, 1_000, 8)
    } else {
        (2, 200_000, 10_000, 16)
    };
    println!("### Section 6.1 — skewed vs uniform weights (threaded backend, p = {p}, b = {b}, k = {k})\n");
    let (u_time, u_ins, u_rounds) =
        mean_batch_seconds(p, b, k, batches, WeightGen::paper_uniform());
    let (s_time, s_ins, s_rounds) = mean_batch_seconds(p, b, k, batches, WeightGen::paper_skewed());
    let ratio = s_time / u_time;
    println!("| workload | s/batch | inserts/batch/PE | selection rounds/batch |");
    println!("|---|---|---|---|");
    println!("| uniform (0,100] | {u_time:.6} | {u_ins:.0} | {u_rounds:.1} |");
    println!("| skewed normal   | {s_time:.6} | {s_ins:.0} | {s_rounds:.1} |");
    println!(
        "\nskewed / uniform wall-time ratio: {ratio:.2}; insert ratio {:.2}; round ratio {:.2}",
        s_ins / u_ins,
        s_rounds / u_rounds
    );
    println!("(paper: no significant difference — the algorithmic counters are the robust check on noisy machines)");
}
