//! Reality check for the simulator: run the *threaded* backend (real
//! threads, real collectives) at laptop scale and print per-batch times
//! for ours vs ours-8 vs gather. Complements the simulated figures — the
//! qualitative ordering (gather slowest for large k) must match.

use std::time::Instant;

use reservoir_bench::RunOpts;
use reservoir_comm::{run_threads, Communicator as _};
use reservoir_core::dist::gather::GatherSampler;
use reservoir_core::dist::threaded::DistributedSampler;
use reservoir_core::dist::DistConfig;
use reservoir_stream::{StreamSpec, WeightGen};

fn bench_threaded(p: usize, b: usize, k: usize, batches: usize, algo: &str) -> f64 {
    let spec = StreamSpec {
        pes: p,
        batch_size: b,
        weights: WeightGen::paper_uniform(),
        seed: 7,
    };
    let algo = algo.to_string();
    let times = run_threads(p, |comm| {
        let cfg = match algo.as_str() {
            "ours" => DistConfig::weighted(k, 7),
            "ours-8" => DistConfig::weighted(k, 7).with_pivots(8),
            _ => DistConfig::weighted(k, 7),
        };
        let mut src = spec.source_for(comm.rank());
        let mut buf = Vec::new();
        // Input generation excluded from timing, as in the paper.
        if algo == "gather" {
            let mut s = GatherSampler::new(&comm, cfg);
            src.next_batch_into(&mut buf);
            s.process_batch(&buf);
            let mut total = 0.0;
            for _ in 0..batches {
                src.next_batch_into(&mut buf);
                use reservoir_comm::Collectives;
                comm.barrier();
                let start = Instant::now();
                s.process_batch(&buf);
                total += start.elapsed().as_secs_f64();
            }
            total / batches as f64
        } else {
            let mut s = DistributedSampler::new(&comm, cfg);
            src.next_batch_into(&mut buf);
            s.process_batch(&buf);
            let mut total = 0.0;
            for _ in 0..batches {
                src.next_batch_into(&mut buf);
                use reservoir_comm::Collectives;
                comm.barrier();
                let start = Instant::now();
                s.process_batch(&buf);
                total += start.elapsed().as_secs_f64();
            }
            total / batches as f64
        }
    });
    times.iter().sum::<f64>() / times.len() as f64
}

fn main() {
    let quick = RunOpts::from_env().quick;
    let (b, k, batches) = if quick {
        (20_000, 2_000, 5)
    } else {
        (100_000, 10_000, 10)
    };
    println!("### Threaded reality check — per-batch seconds (b = {b}/PE, k = {k})\n");
    println!("| p | ours | ours-8 | gather |");
    println!("|---|---|---|---|");
    for p in [1usize, 2, 4] {
        let ours = bench_threaded(p, b, k, batches, "ours");
        let ours8 = bench_threaded(p, b, k, batches, "ours-8");
        let gather = bench_threaded(p, b, k, batches, "gather");
        println!("| {p} | {ours:.5} | {ours8:.5} | {gather:.5} |");
    }
}
