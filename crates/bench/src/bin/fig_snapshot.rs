//! Snapshot-reader throughput under live ingestion: how many consistent
//! sample reads per second the always-fresh epoch slot serves while the
//! pipeline keeps ingesting, swept over p PEs × t reader threads per PE
//! against the ingest rate they ride on. The `reader_threads = 0` rows
//! are the ingest-only baseline of the same configuration, so the table
//! also answers "what does continuous publication cost the pipeline?"
//! (the publication itself is always on here — every batch runs the
//! finalize/place sequence — the readers only add slot traffic).
//!
//! Emits a human-readable table on stdout and a machine-readable
//! `BENCH_snapshot.json` (override the path with `RESERVOIR_BENCH_OUT`)
//! which CI uploads as a non-gating artifact. Honours
//! `RESERVOIR_BENCH_QUICK=1` for a reduced batch size.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use reservoir_core::dist::threaded::DistributedSampler;
use reservoir_core::dist::{ContinuousMode, DistConfig};
use reservoir_rng::{default_rng, Rng64};
use reservoir_stream::Item;

const K: usize = 1024;
const BATCHES: u64 = 8;

struct Sweep {
    pes: usize,
    reader_threads: usize,
    ingest_items_per_s: f64,
    reads_per_s: f64,
    reads_total: u64,
    epochs: u64,
}

fn main() {
    // Arm observability so the emitted JSON carries the run's full
    // metrics snapshot next to the measured sweep.
    reservoir_obs::set_enabled(true);
    let quick = std::env::var_os("RESERVOIR_BENCH_QUICK").is_some();
    let b: u64 = if quick { 100_000 } else { 1_000_000 };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut sweep = Vec::new();
    for pes in [1usize, 2, 4] {
        for readers in [0usize, 1, 2, 4] {
            let results = reservoir_comm::run_threads(pes, move |comm| {
                use reservoir_comm::Communicator;
                let mut rng = default_rng(0x5AAB ^ comm.rank() as u64);
                let items: Vec<Item> = (0..b)
                    .map(|i| Item::new(((comm.rank() as u64) << 40) | i, rng.rand_oc() * 100.0))
                    .collect();
                let cfg =
                    DistConfig::weighted(K, 0xF16).with_continuous(ContinuousMode::EveryBatch);
                let mut s = DistributedSampler::new(&comm, cfg);
                let reader = s.snapshot_reader();
                let stop = AtomicBool::new(false);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..readers)
                        .map(|_| {
                            let r = reader.clone();
                            let stop = &stop;
                            scope.spawn(move || {
                                let mut reads = 0u64;
                                while !stop.load(Ordering::Relaxed) {
                                    let e = r.read();
                                    assert!(e.verify(), "torn epoch under bench load");
                                    reads += 1;
                                }
                                reads
                            })
                        })
                        .collect();
                    let start = Instant::now();
                    for _ in 0..BATCHES {
                        s.process_batch(&items);
                    }
                    let elapsed = start.elapsed().as_secs_f64();
                    stop.store(true, Ordering::Relaxed);
                    let reads: u64 = handles.into_iter().map(|h| h.join().expect("reader")).sum();
                    let epochs = reader.latest_epoch();
                    (elapsed, reads, epochs)
                })
            });
            let elapsed = results.iter().map(|r| r.0).fold(0.0f64, f64::max);
            let reads: u64 = results.iter().map(|r| r.1).sum();
            sweep.push(Sweep {
                pes,
                reader_threads: readers,
                ingest_items_per_s: (pes as u64 * BATCHES * b) as f64 / elapsed,
                reads_per_s: reads as f64 / elapsed,
                reads_total: reads,
                epochs: results[0].2,
            });
        }
    }

    // --- stdout table ---------------------------------------------------
    println!("### fig_snapshot — epoch reads under live ingestion, b = {b}, k = {K}");
    println!("host cores: {cores}");
    println!("\n| PEs | readers/PE | ingest items/s | reads/s | reads | epochs |");
    println!("|---|---|---|---|---|---|");
    for s in &sweep {
        println!(
            "| {} | {} | {:.3e} | {:.3e} | {} | {} |",
            s.pes, s.reader_threads, s.ingest_items_per_s, s.reads_per_s, s.reads_total, s.epochs,
        );
    }

    // --- machine-readable trajectory ------------------------------------
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"snapshot\",");
    let _ = writeln!(json, "  \"driver\": \"distributed-sampler\",");
    let _ = writeln!(json, "  \"mode\": \"weighted\",");
    let _ = writeln!(json, "  \"batch_items\": {b},");
    let _ = writeln!(json, "  \"batches\": {BATCHES},");
    let _ = writeln!(json, "  \"sample_k\": {K},");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"sweep\": [");
    for (i, s) in sweep.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"pes\": {}, \"reader_threads\": {}, \
             \"ingest_items_per_s\": {:.6e}, \"reads_per_s\": {:.6e}, \
             \"reads_total\": {}, \"epochs\": {}}}{}",
            s.pes,
            s.reader_threads,
            s.ingest_items_per_s,
            s.reads_per_s,
            s.reads_total,
            s.epochs,
            if i + 1 < sweep.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"obs\": {}",
        reservoir_obs::global().reader().json()
    );
    let _ = writeln!(json, "}}");

    let out = std::env::var("RESERVOIR_BENCH_OUT").unwrap_or_else(|_| "BENCH_snapshot.json".into());
    std::fs::write(&out, &json).expect("write BENCH_snapshot.json");
    eprintln!("wrote {out}");
}
