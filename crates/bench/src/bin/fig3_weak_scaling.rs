//! Regenerates the paper's fig3 weak scaling experiment. Honours
//! `RESERVOIR_BENCH_QUICK=1` for a reduced grid.

use reservoir_bench::{calibrate, figures, RunOpts};

fn main() {
    let opts = RunOpts::from_env();
    eprintln!("calibrating local cost model...");
    let costs = calibrate(opts.quick);
    eprintln!("calibration: {costs:?}");
    print!("{}", figures::fig3_weak_scaling(&costs, &opts));
}
