//! Fleet memory + sparse-batch economics of the pooled shard fleet: one
//! [`ShardedSampler`] under the concurrent merge draws every shard tree's
//! nodes from a single shared [`NodePool`], so constructing an S-shard
//! fleet costs O(pages) heap allocations instead of S private arenas —
//! measured here as construction wall time and resident pool bytes
//! straight from [`PoolStats`]. The same sweep drives supersteps at
//! increasing sparse fractions (the share of shards whose bucket is empty
//! fleet-wide) to show the sparse-batch fast path: skipped shards run no
//! insert scan and no selection planning, and per-superstep wall time
//! tracks the *active* shard count, not S.
//!
//! Emits a human-readable table on stdout and a machine-readable
//! `BENCH_fleet_mem.json` (override the path with `RESERVOIR_BENCH_OUT`)
//! — CI uploads it as a non-gating artifact alongside the other fig_*
//! bins. Honours `RESERVOIR_BENCH_QUICK=1` for a reduced sweep.

use std::fmt::Write as _;
use std::time::Instant;

use reservoir_btree::PAGE_NODES;
use reservoir_comm::run_threads;
use reservoir_core::dist::{DistConfig, MergeMode, ShardedSampler};
use reservoir_stream::Item;

/// PEs in the threaded cluster.
const P: usize = 2;
/// Per-shard sample size (small: the fleet regime is many tiny
/// reservoirs, where per-shard fixed costs dominate).
const K: usize = 8;

struct Sweep {
    shards: usize,
    sparse_pct: u32,
    active: usize,
    /// Records each PE feeds the fleet per superstep (raised to cover
    /// every active shard at the biggest fleet sizes).
    per_pe: u64,
    /// Fleet construction wall seconds (rank 0).
    construct_s: f64,
    /// Pages resident in the shared pool right after construction.
    pages_at_build: u64,
    /// Bytes resident in the shared pool right after construction.
    bytes_at_build: u64,
    /// Bump-pointer allocations paid by construction (one root leaf per
    /// shard — the O(pages) claim is `pages_at_build`, not this).
    fresh_at_build: u64,
    /// Live pool slots after the measured supersteps.
    live_slots: u64,
    /// Resident pool bytes after the measured supersteps.
    bytes_after: u64,
    /// Mean wall seconds per superstep.
    batch_s: f64,
    /// Mean shards skipped by the sparse fast path per superstep.
    skipped_per_batch: f64,
}

fn main() {
    // Arm observability so the emitted JSON carries the run's full
    // metrics snapshot (pool gauges included) next to the measured sweep.
    reservoir_obs::set_enabled(true);
    let quick = std::env::var_os("RESERVOIR_BENCH_QUICK").is_some();
    let per_pe: u64 = if quick { 2_000 } else { 8_000 };
    let batches: u64 = if quick { 3 } else { 6 };
    let shard_grid: &[usize] = &[1, 64, 4096];
    let sparse_grid: &[u32] = &[0, 50, 95];

    let mut sweep = Vec::new();
    for &shards in shard_grid {
        for &sparse_pct in sparse_grid {
            // Active shards receive records; the rest are empty
            // fleet-wide every superstep and should be skipped.
            let active = ((shards as u64 * (100 - sparse_pct) as u64).div_ceil(100)) as usize;
            let active = active.max(1);
            // Every active shard must see at least one record per
            // superstep, or the sparse fast path would fire inside the
            // nominally-dense rows and muddy the sparse column.
            let per_pe = per_pe.max(active as u64);
            let result = run_threads(P, move |comm| {
                use reservoir_comm::Communicator;
                let cfg = DistConfig::weighted(K, 0xF1EE7)
                    .with_merge(MergeMode::Concurrent)
                    .with_threads(1);
                let start = Instant::now();
                let mut fleet = ShardedSampler::new(&comm, cfg, shards);
                let construct_s = start.elapsed().as_secs_f64();
                let pool = fleet
                    .node_pool()
                    .expect("concurrent fleet shares a node pool")
                    .clone();
                let build = pool.stats();

                let mut buckets: Vec<Vec<Item>> = vec![Vec::new(); shards];
                let mut skipped = 0u64;
                let start = Instant::now();
                for b in 0..batches {
                    for bucket in &mut buckets {
                        bucket.clear();
                    }
                    // Round-robin the batch over the active prefix only;
                    // ids stay distinct across PEs and batches.
                    for i in 0..per_pe {
                        let seq = b * per_pe + i;
                        let id = ((comm.rank() as u64) << 40) | seq;
                        buckets[(seq % active as u64) as usize]
                            .push(Item::new(id, 0.5 + (seq % 97) as f64));
                    }
                    let rep = fleet.process_batch(&buckets);
                    skipped += rep.shards_skipped as u64;
                }
                let steps_s = start.elapsed().as_secs_f64();
                let after = pool.stats();
                (
                    construct_s,
                    build,
                    steps_s,
                    skipped,
                    pool.live_slots(),
                    after.bytes,
                )
            });
            let (construct_s, build, steps_s, skipped, live_slots, bytes_after) = result[0];
            sweep.push(Sweep {
                shards,
                sparse_pct,
                active,
                per_pe,
                construct_s,
                pages_at_build: build.pages,
                bytes_at_build: build.bytes,
                fresh_at_build: build.fresh,
                live_slots,
                bytes_after,
                batch_s: steps_s / batches as f64,
                skipped_per_batch: skipped as f64 / batches as f64,
            });
        }
    }

    // --- stdout table ---------------------------------------------------
    println!(
        "### fig_fleet_mem — {P} PEs, k = {K} per shard, concurrent merge, \
         >= {per_pe} records/PE/batch, {batches} batches, {PAGE_NODES} nodes/page"
    );
    println!(
        "\n| shards | sparse | active | rec/PE | construct s | pages | pool KiB | \
         s/batch | skipped/batch | live slots |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|");
    for s in &sweep {
        println!(
            "| {} | {}% | {} | {} | {:.3e} | {} | {:.0} | {:.3e} | {:.1} | {} |",
            s.shards,
            s.sparse_pct,
            s.active,
            s.per_pe,
            s.construct_s,
            s.pages_at_build,
            s.bytes_at_build as f64 / 1024.0,
            s.batch_s,
            s.skipped_per_batch,
            s.live_slots,
        );
    }

    // --- machine-readable trajectory ------------------------------------
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"fleet_mem\",");
    let _ = writeln!(json, "  \"driver\": \"threaded\",");
    let _ = writeln!(json, "  \"pes\": {P},");
    let _ = writeln!(json, "  \"sample_k\": {K},");
    let _ = writeln!(json, "  \"merge_mode\": \"concurrent\",");
    let _ = writeln!(json, "  \"records_per_pe_per_batch_floor\": {per_pe},");
    let _ = writeln!(json, "  \"batches\": {batches},");
    let _ = writeln!(json, "  \"page_nodes\": {PAGE_NODES},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"sweep\": [");
    for (i, s) in sweep.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"shards\": {}, \"sparse_pct\": {}, \"active_shards\": {}, \
             \"records_per_pe_per_batch\": {}, \
             \"construct_s\": {:.6e}, \"pool_pages_at_build\": {}, \
             \"pool_bytes_at_build\": {}, \"pool_fresh_allocs_at_build\": {}, \
             \"pool_live_slots_after\": {}, \"pool_bytes_after\": {}, \
             \"batch_s\": {:.6e}, \"shards_skipped_per_batch\": {:.2}}}{}",
            s.shards,
            s.sparse_pct,
            s.active,
            s.per_pe,
            s.construct_s,
            s.pages_at_build,
            s.bytes_at_build,
            s.fresh_at_build,
            s.live_slots,
            s.bytes_after,
            s.batch_s,
            s.skipped_per_batch,
            if i + 1 < sweep.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"obs\": {}",
        reservoir_obs::global().reader().json()
    );
    let _ = writeln!(json, "}}");

    let out =
        std::env::var("RESERVOIR_BENCH_OUT").unwrap_or_else(|_| "BENCH_fleet_mem.json".into());
    std::fs::write(&out, &json).expect("write BENCH_fleet_mem.json");
    eprintln!("wrote {out}");
}
