//! One function per paper figure/table; shared by the full-size binaries
//! and the quick `cargo bench` target.

use reservoir_comm::CostModel;
use reservoir_core::dist::sim::SimAlgo;

use crate::calibrate::MeasuredLocalCosts;
use crate::harness::{algo_label, format_table, run_sim_experiment, sim_config, NODE_GRID};

/// Grid/effort options: `quick` shrinks grids so `cargo bench` finishes in
/// minutes; binaries run the full paper grid.
#[derive(Clone, Debug)]
pub struct RunOpts {
    pub nodes: Vec<usize>,
    /// Simulated measurement window per configuration (the paper uses 30 s).
    pub window_s: f64,
    /// Cap on simulated batches per window (fast configs are stationary
    /// long before the window ends).
    pub max_batches: u64,
    pub quick: bool,
}

impl RunOpts {
    pub fn full() -> Self {
        RunOpts {
            nodes: NODE_GRID.to_vec(),
            window_s: 30.0,
            max_batches: 20_000,
            quick: false,
        }
    }

    pub fn quick() -> Self {
        RunOpts {
            nodes: vec![1, 16, 256],
            window_s: 2.0,
            max_batches: 2_000,
            quick: true,
        }
    }

    /// Honour `RESERVOIR_BENCH_QUICK=1`.
    pub fn from_env() -> Self {
        if std::env::var_os("RESERVOIR_BENCH_QUICK").is_some() {
            Self::quick()
        } else {
            Self::full()
        }
    }
}

const ALGOS: [SimAlgo; 3] = [
    SimAlgo::Ours { pivots: 1 },
    SimAlgo::Ours { pivots: 8 },
    SimAlgo::Gather,
];

fn k_grid(quick: bool) -> Vec<usize> {
    if quick {
        vec![1_000, 100_000]
    } else {
        vec![1_000, 10_000, 100_000]
    }
}

fn net() -> CostModel {
    CostModel::infiniband_edr()
}

/// Figure 3: weak scaling. Per-PE batch size fixed; speedups relative to
/// `ours` (single pivot) on 1 node for the same sample size.
pub fn fig3_weak_scaling(costs: &MeasuredLocalCosts, opts: &RunOpts) -> String {
    let mut out = String::new();
    let b_grid: Vec<u64> = if opts.quick {
        vec![100_000]
    } else {
        vec![1_000_000, 100_000, 10_000]
    };
    for b in b_grid {
        let ks = k_grid(opts.quick);
        // Baseline: ours (d=1) on 1 node, per sample size.
        let mut base = Vec::new();
        for &k in &ks {
            let cfg = sim_config(1, k, b, SimAlgo::Ours { pivots: 1 }, 42);
            base.push(
                run_sim_experiment(cfg, net(), costs.clone(), opts.window_s, opts.max_batches)
                    .throughput,
            );
        }
        let mut labels = Vec::new();
        let mut rows = Vec::new();
        for &nodes in &opts.nodes {
            let mut vals = Vec::new();
            for algo in ALGOS {
                for (ki, &k) in ks.iter().enumerate() {
                    if rows.is_empty() {
                        labels.push(format!("{} k={k}", algo_label(algo)));
                    }
                    let cfg = sim_config(nodes, k, b, algo, 42);
                    let r = run_sim_experiment(
                        cfg,
                        net(),
                        costs.clone(),
                        opts.window_s,
                        opts.max_batches,
                    );
                    vals.push(r.throughput / base[ki]);
                }
            }
            rows.push((nodes, vals));
        }
        out.push_str(&format_table(
            &format!("Figure 3 — weak scaling, batch size b = {b} per PE (relative speedup; ideal = nodes)"),
            &labels,
            &rows,
            1,
        ));
    }
    out
}

/// Total batch sizes of the strong-scaling experiments (Section 6.4).
pub fn strong_totals(quick: bool) -> Vec<u64> {
    if quick {
        vec![1024 * 100_000]
    } else {
        vec![1024 * 10_000, 1024 * 100_000, 1024 * 1_000_000]
    }
}

/// Figure 4: strong scaling speedups (fixed global batch size).
pub fn fig4_strong_scaling(costs: &MeasuredLocalCosts, opts: &RunOpts) -> String {
    let mut out = String::new();
    for &big_b in &strong_totals(opts.quick) {
        let ks = k_grid(opts.quick);
        let mut labels = Vec::new();
        let mut rows: Vec<(usize, Vec<f64>)> =
            opts.nodes.iter().map(|&n| (n, Vec::new())).collect();
        for algo in ALGOS {
            for &k in &ks {
                labels.push(format!("{} k={k}", algo_label(algo)));
                let base_cfg = sim_config(
                    1,
                    k,
                    big_b / crate::harness::PES_PER_NODE as u64,
                    SimAlgo::Ours { pivots: 1 },
                    42,
                );
                let base = run_sim_experiment(
                    base_cfg,
                    net(),
                    costs.clone(),
                    opts.window_s,
                    opts.max_batches,
                )
                .per_batch_s;
                for (ni, &nodes) in opts.nodes.iter().enumerate() {
                    let p = nodes * crate::harness::PES_PER_NODE;
                    let cfg = sim_config(nodes, k, big_b / p as u64, algo, 42);
                    let r = run_sim_experiment(
                        cfg,
                        net(),
                        costs.clone(),
                        opts.window_s,
                        opts.max_batches,
                    );
                    rows[ni].1.push(base / r.per_batch_s);
                }
            }
        }
        out.push_str(&format_table(
            &format!("Figure 4 — strong scaling, total batch size B = {big_b} (speedup rel. to ours on 1 node; ideal = nodes)"),
            &labels,
            &rows,
            1,
        ));
    }
    out
}

/// Figure 5: strong scaling, throughput per PE (items/s).
pub fn fig5_throughput(costs: &MeasuredLocalCosts, opts: &RunOpts) -> String {
    let mut out = String::new();
    for &big_b in &strong_totals(opts.quick) {
        let ks = k_grid(opts.quick);
        let mut labels = Vec::new();
        let mut rows: Vec<(usize, Vec<f64>)> =
            opts.nodes.iter().map(|&n| (n, Vec::new())).collect();
        for algo in ALGOS {
            for &k in &ks {
                labels.push(format!("{} k={k}", algo_label(algo)));
                for (ni, &nodes) in opts.nodes.iter().enumerate() {
                    let p = nodes * crate::harness::PES_PER_NODE;
                    let cfg = sim_config(nodes, k, big_b / p as u64, algo, 42);
                    let r = run_sim_experiment(
                        cfg,
                        net(),
                        costs.clone(),
                        opts.window_s,
                        opts.max_batches,
                    );
                    rows[ni].1.push(r.throughput_per_pe / 1e6);
                }
            }
        }
        out.push_str(&format_table(
            &format!("Figure 5 — strong scaling, throughput per PE, B = {big_b} (million items/s per PE)"),
            &labels,
            &rows,
            2,
        ));
    }
    out
}

/// Figure 6: running-time composition, ours-8 vs gather, k = 1e5, panels
/// for strong B2/B3 and weak b2/b3. Values are phase fractions of the
/// *slower* algorithm's total (the paper's normalization).
pub fn fig6_composition(costs: &MeasuredLocalCosts, opts: &RunOpts) -> String {
    let mut out = String::new();
    let k = 100_000;
    let panels: Vec<(String, bool, u64)> = if opts.quick {
        vec![("weak b2 = 1e5".into(), false, 100_000)]
    } else {
        vec![
            ("strong B2 = 2^10·1e5".into(), true, 1024 * 100_000),
            ("strong B3 = 2^10·1e6".into(), true, 1024 * 1_000_000),
            ("weak b2 = 1e5".into(), false, 100_000),
            ("weak b3 = 1e6".into(), false, 1_000_000),
        ]
    };
    for (name, strong, size) in panels {
        let labels: Vec<String> = [
            "ours-8 insert",
            "ours-8 select",
            "ours-8 thresh",
            "gather insert",
            "gather gather",
            "gather select",
            "gather thresh",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut rows = Vec::new();
        for &nodes in &opts.nodes {
            let p = nodes * crate::harness::PES_PER_NODE;
            let b = if strong { size / p as u64 } else { size };
            if b == 0 {
                continue;
            }
            let ours = run_sim_experiment(
                sim_config(nodes, k, b, SimAlgo::Ours { pivots: 8 }, 42),
                net(),
                costs.clone(),
                opts.window_s,
                opts.max_batches,
            );
            let gather = run_sim_experiment(
                sim_config(nodes, k, b, SimAlgo::Gather, 42),
                net(),
                costs.clone(),
                opts.window_s,
                opts.max_batches,
            );
            let norm = ours.phases.total().max(gather.phases.total());
            rows.push((
                nodes,
                vec![
                    ours.phases.insert / norm,
                    ours.phases.select / norm,
                    ours.phases.threshold / norm,
                    gather.phases.insert / norm,
                    gather.phases.gather / norm,
                    gather.phases.select / norm,
                    gather.phases.threshold / norm,
                ],
            ));
        }
        out.push_str(&format_table(
            &format!("Figure 6 — running time composition, {name}, k = 1e5 (fractions of the slower algorithm's total)"),
            &labels,
            &rows,
            3,
        ));
    }
    out
}

/// Section 6.3 in-text numbers: average selection recursion depth, single
/// vs 8 pivots, weak scaling with b = 1e6 on the largest machine.
pub fn recursion_depth_table(costs: &MeasuredLocalCosts, opts: &RunOpts) -> String {
    use std::fmt::Write;
    let nodes = *opts.nodes.last().expect("nonempty grid");
    let b = if opts.quick { 100_000 } else { 1_000_000 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n### Section 6.3 — average selection recursion depth (weak scaling, {nodes} nodes, b = {b})\n"
    );
    let _ = writeln!(out, "| k | d=1 | d=8 | reduction | paper d=1 | paper d=8 |");
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    let paper = [
        (1_000usize, 1.9, 1.1),
        (10_000, 4.3, 1.8),
        (100_000, 7.3, 2.7),
    ];
    for (k, p1, p8) in paper {
        let mut depth = [0.0f64; 2];
        for (i, d) in [1usize, 8].into_iter().enumerate() {
            let cfg = sim_config(nodes, k, b, SimAlgo::Ours { pivots: d }, 42);
            let r = run_sim_experiment(cfg, net(), costs.clone(), opts.window_s, opts.max_batches);
            depth[i] = r.avg_rounds;
        }
        let red = if depth[1] > 0.0 {
            depth[0] / depth[1]
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "| {k} | {:.1} | {:.1} | {red:.1}x | {p1} | {p8} |",
            depth[0], depth[1]
        );
    }
    out
}
