//! Benchmark harness reproducing every figure and in-text measurement of
//! the paper's evaluation (Section 6).
//!
//! One binary per experiment (see `src/bin/`); shared machinery here:
//!
//! * [`calibrate`] — measures this machine's local-work costs (jump-scan
//!   throughput with its cache knee, B+ tree insertion, quickselect) and
//!   builds a [`MeasuredLocalCosts`] for the cluster simulator, replacing
//!   the paper's ForHLR II compute nodes.
//! * [`harness`] — runs simulated experiments over the paper's parameter
//!   grids and formats the result tables.

pub mod calibrate;
pub mod figures;
pub mod harness;

pub use calibrate::{calibrate, MeasuredLocalCosts};
pub use figures::RunOpts;
pub use harness::{run_sim_experiment, ExperimentResult, NODE_GRID, PES_PER_NODE};
