//! Criterion micro-benchmarks and ablations for the design choices called
//! out in DESIGN.md:
//!
//! * jump-based vs naive sequential sampling (Section 4.1);
//! * blocked (32-at-a-time) vs scalar weighted skip scan (Section 5);
//! * B+ tree node degree;
//! * single- vs multi-pivot selection (Section 3.3);
//! * quickselect vs full sort (the gather baseline's root-side work);
//! * exact-k vs variable-size selection targets (Section 4.4).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use reservoir_btree::{BPlusTree, SampleKey};
use reservoir_core::dist::local::LocalReservoir;
use reservoir_core::seq::{UniformJumpSampler, WeightedJumpSampler, WeightedNaiveSampler};
use reservoir_rng::{default_rng, Rng64};
use reservoir_select::{kth_smallest, select_conductor, SelectParams, SortedKeys, TargetRank};
use reservoir_stream::Item;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400))
}

fn seq_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("seq_sampling");
    let n = 1_000_000u64;
    let k = 1_000;
    let weights: Vec<f64> = {
        let mut rng = default_rng(1);
        (0..n).map(|_| rng.rand_oc() * 100.0).collect()
    };
    group.bench_function("weighted_jump", |b| {
        b.iter(|| {
            let mut s = WeightedJumpSampler::new(k, default_rng(2));
            for (i, &w) in weights.iter().enumerate() {
                s.process(i as u64, w);
            }
            s.sample().len()
        })
    });
    group.bench_function("weighted_naive", |b| {
        b.iter(|| {
            let mut s = WeightedNaiveSampler::new(k, default_rng(2));
            for (i, &w) in weights.iter().enumerate() {
                s.process(i as u64, w);
            }
            s.sample().len()
        })
    });
    group.bench_function("uniform_jump_run", |b| {
        b.iter(|| {
            let mut s = UniformJumpSampler::new(k, default_rng(2));
            s.process_run(0, n);
            s.sample().len()
        })
    });
    group.finish();
}

/// Scalar reference scan (no 32-item blocking) for the Section 5 ablation.
fn scalar_jump_scan(items: &[Item], t: f64, rng: &mut impl Rng64) -> u64 {
    let mut inserted = 0;
    let mut j = 0usize;
    while j < items.len() {
        let mut x = rng.exponential(t);
        loop {
            if j >= items.len() {
                return inserted;
            }
            x -= items[j].weight;
            j += 1;
            if x <= 0.0 {
                inserted += 1;
                break;
            }
        }
    }
    inserted
}

fn skip_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("skip_scan");
    let items: Vec<Item> = {
        let mut rng = default_rng(3);
        (0..1_000_000u64)
            .map(|i| Item::new(i, rng.rand_oc() * 100.0))
            .collect()
    };
    let t = 1e-6; // few insertions: the scan dominates
    group.bench_function("blocked_32", |b| {
        b.iter(|| {
            let mut r = LocalReservoir::new(8, 32);
            let mut rng = default_rng(4);
            r.process_weighted(&items, Some(t), &mut rng).inserted
        })
    });
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut rng = default_rng(4);
            scalar_jump_scan(&items, t, &mut rng)
        })
    });
    group.finish();
}

fn btree_degree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree_degree");
    let keys: Vec<SampleKey> = {
        let mut rng = default_rng(5);
        (0..100_000u64)
            .map(|i| SampleKey::new(rng.rand_oc(), i))
            .collect()
    };
    for degree in [8usize, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::new("insert100k", degree), &degree, |b, &d| {
            b.iter(|| {
                let mut t: BPlusTree<SampleKey, ()> = BPlusTree::with_degree(d);
                for k in &keys {
                    t.insert(*k, ());
                }
                t.len()
            })
        });
    }
    // Split + rejoin at the default degree (the per-batch prune path).
    group.bench_function("split_rejoin_100k", |b| {
        let mut tree: BPlusTree<SampleKey, ()> = BPlusTree::new();
        for k in &keys {
            tree.insert(*k, ());
        }
        let mid = *tree.select(50_000).expect("exists").0;
        b.iter(|| {
            let mut t = std::mem::take(&mut tree);
            let right = t.split_at_key(&mid, true);
            tree = t.join(right);
            tree.len()
        })
    });
    group.finish();
}

fn selection_pivots(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection_pivots");
    let set = SortedKeys::new({
        let mut rng = default_rng(6);
        (0..1_000_000u64)
            .map(|i| SampleKey::new(rng.rand_oc(), i))
            .collect()
    });
    for d in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("exact_k1e5", d), &d, |b, &d| {
            let mut rng = [default_rng(7)];
            b.iter(|| {
                select_conductor(
                    &[&set],
                    TargetRank::exact(100_000),
                    SelectParams::with_pivots(d),
                    &mut rng,
                )
                .result
                .rounds
            })
        });
    }
    // Ablation: exact rank vs a 10% window (variable-size reservoirs).
    group.bench_function("window_pm10pct", |b| {
        let mut rng = [default_rng(8)];
        b.iter(|| {
            select_conductor(
                &[&set],
                TargetRank::range(95_000, 105_000),
                SelectParams::with_pivots(1),
                &mut rng,
            )
            .result
            .rounds
        })
    });
    group.finish();
}

fn root_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("root_selection");
    let keys: Vec<SampleKey> = {
        let mut rng = default_rng(9);
        (0..200_000u64)
            .map(|i| SampleKey::new(rng.rand_oc(), i))
            .collect()
    };
    group.bench_function("quickselect_k1e5", |b| {
        let mut rng = default_rng(10);
        b.iter(|| {
            let mut work = keys.clone();
            kth_smallest(&mut work, 100_000, &mut rng)
        })
    });
    group.bench_function("full_sort", |b| {
        b.iter(|| {
            let mut work = keys.clone();
            work.sort_unstable();
            work[100_000]
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = seq_sampling, skip_scan, btree_degree, selection_pivots, root_selection
}
criterion_main!(benches);
