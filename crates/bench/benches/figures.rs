//! `cargo bench` entry point that regenerates every paper figure/table on a
//! reduced grid (so the whole suite stays in the minutes range). Run the
//! `fig*`/`tab*` binaries with the default environment for the full grids.

use reservoir_bench::{calibrate, figures, RunOpts};

fn main() {
    let opts = RunOpts::quick();
    eprintln!("calibrating local cost model (quick)...");
    let costs = calibrate(true);
    eprintln!("calibration: {costs:?}");
    println!("# Paper experiment suite (quick grid)\n");
    print!("{}", figures::fig3_weak_scaling(&costs, &opts));
    print!("{}", figures::fig4_strong_scaling(&costs, &opts));
    print!("{}", figures::fig5_throughput(&costs, &opts));
    print!("{}", figures::fig6_composition(&costs, &opts));
    print!("{}", figures::recursion_depth_table(&costs, &opts));
    println!("\n(done — full grids: cargo run --release -p reservoir-bench --bin fig3_weak_scaling, etc.)");
}
