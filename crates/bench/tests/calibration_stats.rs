//! Calibrated-vs-analytic cost-model comparison (CI stats job).
//!
//! The cluster simulator charges local work through a [`LocalCostModel`];
//! two implementations exist — `calibrate()`'s measured fit of *this*
//! machine, and the hardware-independent [`AnalyticLocalCosts`] defaults
//! the tests and the golden grid use. This suite keeps the two honest:
//!
//! * **predictive** — the measured fit must predict a fresh, independent
//!   measurement of the dominant operation (the weighted jump scan) on
//!   the same machine within a documented factor;
//! * **analytic** — every per-operation analytic constant must agree with
//!   the measured one within a documented tolerance of **two orders of
//!   magnitude** (|log₁₀ residual| ≤ 2), a bound loose enough for any
//!   plausible CPU yet tight enough to catch a misplaced exponent in
//!   either model;
//! * **artifact** — the full per-operation residual table is written to
//!   `target/calibration/residuals.tsv`, which CI uploads as a
//!   non-gating artifact so the fit's drift across runner generations
//!   stays visible.
//!
//! Gated behind the `stats` feature (timing-sensitive; meaningless in
//! debug builds): `cargo test --release -p reservoir-bench --features
//! stats -- stats_`.

#![cfg(feature = "stats")]

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use reservoir_bench::calibrate;
use reservoir_core::dist::local::LocalReservoir;
use reservoir_core::dist::sim::{AnalyticLocalCosts, LocalCostModel};
use reservoir_rng::{default_rng, Rng64};
use reservoir_stream::Item;

/// The measured fit must predict an independent re-measurement within
/// this factor (same machine, same operation — the slack absorbs cache
/// state, CPU-quota throttling and turbo wobble on shared runners).
const PREDICTIVE_FACTOR: f64 = 5.0;

/// Documented analytic-vs-measured tolerance: two orders of magnitude.
const ANALYTIC_LOG10_TOL: f64 = 2.0;

fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/calibration");
    fs::create_dir_all(&dir).expect("create target/calibration");
    dir
}

#[test]
fn stats_calibrated_fit_predicts_an_independent_scan_measurement() {
    let costs = calibrate(true);
    // Fresh probe, different seed and size than any calibration point.
    let b = 250_000u64;
    let mut rng = default_rng(0x5EED);
    let items: Vec<Item> = (0..b)
        .map(|i| Item::new(i, rng.rand_oc() * 100.0))
        .collect();
    let mut reservoir = LocalReservoir::new(8, 32);
    let mut scan_rng = default_rng(9);
    let _ = reservoir.process_weighted(&items, Some(1e-7), &mut scan_rng); // warm-up
    let reps = 5;
    let start = Instant::now();
    for _ in 0..reps {
        let _ = reservoir.process_weighted(&items, Some(1e-7), &mut scan_rng);
    }
    let measured = start.elapsed().as_secs_f64() / reps as f64;
    let predicted = costs.scan_weighted(b);
    let ratio = predicted / measured;
    assert!(
        (1.0 / PREDICTIVE_FACTOR..=PREDICTIVE_FACTOR).contains(&ratio),
        "calibrated fit predicts {predicted:.3e}s for a {b}-item weighted scan, \
         but an independent measurement took {measured:.3e}s (ratio {ratio:.2}, \
         tolerance {PREDICTIVE_FACTOR}x)"
    );
}

#[test]
fn stats_analytic_costs_within_two_orders_of_calibrated_fit() {
    let measured = calibrate(true);
    let analytic = AnalyticLocalCosts::default();

    // Per-operation comparison points: evaluate both models on the same
    // representative operation sizes (per-item / per-op rates).
    let rows: Vec<(&str, f64, f64)> = vec![
        (
            "scan_weighted_per_item@100k",
            measured.scan_weighted(100_000) / 100_000.0,
            analytic.scan_weighted(100_000) / 100_000.0,
        ),
        (
            "tree_insert_per_op@tree=10k",
            measured.tree_inserts(1_000, 10_000) / 1_000.0,
            analytic.tree_inserts(1_000, 10_000) / 1_000.0,
        ),
        (
            "keygen_per_key",
            measured.keygen(100_000) / 100_000.0,
            analytic.keygen(100_000) / 100_000.0,
        ),
        (
            "quickselect_per_elem",
            measured.quickselect(100_000) / 100_000.0,
            analytic.quickselect(100_000) / 100_000.0,
        ),
        (
            "select_round_local@tree=10k,d=8",
            measured.select_round_local(10_000, 8),
            analytic.select_round_local(10_000, 8),
        ),
    ];

    let mut table = String::from("# calibrated-vs-analytic residuals\n");
    let _ = writeln!(table, "# op\tmeasured_s\tanalytic_s\tlog10_residual");
    let mut worst: Option<(&str, f64)> = None;
    for (op, m, a) in &rows {
        let residual = (m / a).log10();
        let _ = writeln!(table, "{op}\t{m:.6e}\t{a:.6e}\t{residual:+.3}");
        if worst.is_none_or(|(_, w)| residual.abs() > w.abs()) {
            worst = Some((op, residual));
        }
    }
    // Speedup-model comparison rides along in the artifact (it is a
    // ratio, not a rate — compared directly, not via the tolerance).
    let _ = writeln!(
        table,
        "scan_speedup@4t\t{:.4}\t{:.4}\t{:+.3}",
        measured.scan_speedup(4),
        analytic.scan_speedup(4),
        (measured.scan_speedup(4) / analytic.scan_speedup(4)).log10()
    );
    fs::write(artifact_dir().join("residuals.tsv"), &table).expect("write residuals artifact");
    eprintln!("{table}");

    let (op, residual) = worst.expect("nonempty comparison");
    assert!(
        residual.abs() <= ANALYTIC_LOG10_TOL,
        "analytic model for {op} is {residual:+.2} orders of magnitude off the \
         measured fit (documented tolerance ±{ANALYTIC_LOG10_TOL}); residual \
         table written to target/calibration/residuals.tsv:\n{table}"
    );
}

#[test]
fn stats_measured_and_analytic_agree_on_the_simulated_batch_shape() {
    // End-to-end guard: a simulated experiment priced by the measured fit
    // must land within the same two orders of magnitude of the
    // analytic-priced one — the grids CI pins with AnalyticLocalCosts
    // stay meaningful on real hardware.
    use reservoir_bench::harness::{run_sim_experiment, sim_config};
    use reservoir_comm::CostModel;
    use reservoir_core::dist::sim::SimAlgo;

    let measured = calibrate(true);
    let cfg = sim_config(1, 10_000, 100_000, SimAlgo::Ours { pivots: 8 }, 7);
    let net = CostModel::infiniband_edr();
    let with_measured = run_sim_experiment(cfg, net, measured, 0.05, 50);
    let with_analytic = run_sim_experiment(cfg, net, AnalyticLocalCosts::default(), 0.05, 50);
    let ratio = (with_measured.per_batch_s / with_analytic.per_batch_s).log10();
    let mut line = String::new();
    let _ = writeln!(
        line,
        "sim_per_batch_s\t{:.6e}\t{:.6e}\t{ratio:+.3}",
        with_measured.per_batch_s, with_analytic.per_batch_s
    );
    let path = artifact_dir().join("sim_batch_residual.tsv");
    fs::write(&path, &line).expect("write sim residual artifact");
    assert!(
        ratio.abs() <= ANALYTIC_LOG10_TOL,
        "measured-fit simulation is {ratio:+.2} orders of magnitude off the \
         analytic one ({line})"
    );
}
