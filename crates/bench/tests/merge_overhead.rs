//! No-regression guard for the concurrent shared-tree merge: at one scan
//! thread the only difference from the epilogue path is the merge route
//! (DirectSink into the OLC tree vs buffered chunk output + sequential
//! merge), so single-threaded concurrent throughput must stay within
//! noise of the single-threaded chunked scan.
//!
//! The timing assertion is gated behind the `stats` feature (repo
//! convention: timing is meaningless in debug builds) and uses best-of-N
//! with a deliberately generous floor — it exists to catch a structural
//! regression (an accidental O(n) tree pass per chunk, a lock left in the
//! read path), not a few percent of drift. The always-on test pins the
//! other half of the drop-in contract on the exact bench workload: byte
//! identical samples.

use reservoir_par::{ConcurrentReservoir, ParLocalReservoir};
use reservoir_rng::{default_rng, Rng64};
use reservoir_stream::Item;

const K: usize = 8;
const SEED: u64 = 0xBA5E;

fn workload(n: u64) -> Vec<Item> {
    let mut rng = default_rng(SEED);
    (0..n)
        .map(|i| Item::new(i, rng.rand_oc() * 100.0))
        .collect()
}

#[test]
fn conc_threads1_produces_the_epilogue_sample_on_the_bench_workload() {
    let items = workload(100_000);
    let mut epi = ParLocalReservoir::new(K, 32, 1, SEED);
    let mut conc = ConcurrentReservoir::new(K, 1, SEED);
    epi.process_weighted(&items, Some(1e-4));
    conc.process_weighted(&items, Some(1e-4));
    let mut a: Vec<(u64, u64)> = epi
        .tree()
        .iter()
        .map(|(k, _)| (k.id, k.key.to_bits()))
        .collect();
    let mut b = Vec::new();
    conc.tree().for_each(|k, _| b.push((k.id, k.key.to_bits())));
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "merge route changed the sample");
}

#[cfg(feature = "stats")]
#[test]
fn stats_conc_threads1_throughput_within_noise_of_epilogue() {
    use std::time::Instant;

    let items = workload(2_000_000);
    let best_of = |f: &mut dyn FnMut()| -> f64 {
        (0..7)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };

    let mut epi = ParLocalReservoir::new(K, 32, 1, SEED);
    epi.process_weighted(&items, Some(1e-6)); // warm-up / threshold regime
    let epi_s = best_of(&mut || {
        epi.process_weighted(&items, Some(1e-6));
    });

    let mut conc = ConcurrentReservoir::new(K, 1, SEED);
    conc.process_weighted(&items, Some(1e-6));
    let conc_s = best_of(&mut || {
        conc.process_weighted(&items, Some(1e-6));
    });

    let ratio = epi_s / conc_s; // > 1 means concurrent is faster
    println!(
        "threads=1 merge overhead: epilogue {epi_s:.4}s, concurrent {conc_s:.4}s, \
         conc/epi throughput ratio {ratio:.2}"
    );
    assert!(
        ratio > 0.5,
        "single-threaded concurrent merge fell to {ratio:.2}x of the epilogue \
         scan — a structural regression, not noise"
    );

    // Leaf-affinity (key-ordered micro-batched inserts) exists to cut
    // contention at high thread counts; at t=1 there is no contention to
    // cut, so its buffer-and-sort detour must not sink the concurrent
    // floor either — same generous structural bound as above.
    let mut plain = ConcurrentReservoir::new(K, 1, SEED).with_leaf_affinity(false);
    plain.process_weighted(&items, Some(1e-6));
    let plain_s = best_of(&mut || {
        plain.process_weighted(&items, Some(1e-6));
    });
    let affinity_ratio = plain_s / conc_s; // > 1 means affinity is faster
    println!(
        "threads=1 leaf affinity: off {plain_s:.4}s, on {conc_s:.4}s, \
         on/off throughput ratio {affinity_ratio:.2}"
    );
    assert!(
        affinity_ratio > 0.5,
        "leaf-affinity insertion fell to {affinity_ratio:.2}x of arrival-order \
         inserts at t=1 — the micro-batch path regressed the concurrent floor"
    );
}
