//! # reservoir — communication-efficient (weighted) reservoir sampling
//!
//! A Rust implementation of *Hübschle-Schneider & Sanders,
//! "Communication-Efficient (Weighted) Reservoir Sampling"* (SPAA 2020):
//! maintain a uniform or weighted random sample **without replacement** of
//! size `k` over the union of data streams arriving as mini-batches at `p`
//! processing elements — with no coordinator and only O(α log p)-latency
//! collectives per batch.
//!
//! This crate is the facade over the workspace:
//!
//! | Layer | Crate | What it provides |
//! |---|---|---|
//! | [`seq`] | `reservoir-core` | sequential samplers: exponential/geometric jumps + naive references |
//! | [`dist`] | `reservoir-core` | Algorithm 1 and Section 5 output as **one engine** (`dist::engine::ReservoirProtocol` over the `SamplerBackend` trait) with three backends — threaded execution, the gather baseline policy, the cost-charging simulator — plus the variable-size variant and [`SampleHandle`] |
//! | [`select`] | `reservoir-select` | distributed selection: single/multi-pivot, approximate (amsSelect), quickselect |
//! | [`btree`] | `reservoir-btree` | augmented B+ tree: rank/select/split/join local reservoirs |
//! | [`comm`] | `reservoir-comm` | Communicator trait, threaded runtime, collectives, α–β cost model |
//! | [`stream`] | `reservoir-stream` | mini-batch model, workload generators, push-based ingestion runtime (`stream::ingest`: record sources, batchers, backpressure) |
//! | [`par`] | `reservoir-par` | scoped work-stealing thread pool, parallel per-PE local scan (`ParLocalReservoir`) |
//! | [`rng`] | `reservoir-rng` | MT19937-64, xoshiro256++, exponential/geometric deviates |
//!
//! ## Quick start (sequential)
//!
//! ```
//! use reservoir::seq::WeightedJumpSampler;
//! use reservoir::rng::default_rng;
//!
//! let mut sampler = WeightedJumpSampler::new(100, default_rng(7));
//! for id in 0..1_000_000u64 {
//!     sampler.process(id, 1.0 + (id % 10) as f64);
//! }
//! assert_eq!(sampler.sample().len(), 100);
//! ```
//!
//! ## Quick start (distributed, 4 PEs on threads)
//!
//! ```
//! use reservoir::comm::{run_threads, Communicator};
//! use reservoir::dist::threaded::DistributedSampler;
//! use reservoir::dist::DistConfig;
//! use reservoir::stream::{StreamSpec, WeightGen};
//!
//! let spec = StreamSpec { pes: 4, batch_size: 1000, weights: WeightGen::paper_uniform(), seed: 1 };
//! let samples = run_threads(4, |comm| {
//!     let mut sampler = DistributedSampler::new(&comm, DistConfig::weighted(50, 1));
//!     let mut source = spec.source_for(comm.rank());
//!     for _ in 0..5 {
//!         let batch = source.next_batch();
//!         sampler.process_batch(&batch);
//!     }
//!     sampler.gather_sample() // Some(sample) on PE 0
//! });
//! assert_eq!(samples[0].as_ref().map(Vec::len), Some(50));
//! ```
//!
//! ## Quick start (push-based ingestion with backpressure)
//!
//! Real workloads *push* records in rather than being pulled: adapt them
//! as a [`stream::ingest::RecordSource`], pump them through a per-PE
//! [`stream::ingest::Batcher`] (mini-batches cut on size or deadline over
//! a bounded channel — a slow sampler throttles the source instead of
//! buffering without limit), and let `run_pipeline` drain, sample, and
//! collect the Section 5 output:
//!
//! ```
//! use reservoir::comm::run_threads;
//! use reservoir::dist::threaded::DistributedSampler;
//! use reservoir::dist::DistConfig;
//! use reservoir::stream::ingest::{spawn_source, BatchPolicy, SyntheticRecords};
//! use reservoir::stream::{StreamSpec, WeightGen};
//!
//! let spec = StreamSpec { pes: 2, batch_size: 500, weights: WeightGen::paper_uniform(), seed: 3 };
//! let reports = run_threads(2, |comm| {
//!     use reservoir::comm::Communicator;
//!     let source = SyntheticRecords::new(spec.source_for(comm.rank()), 2_000);
//!     let mut ingest = spawn_source(source, BatchPolicy::by_size(500), 4);
//!     let rx = ingest.take_receiver();
//!     let mut sampler = DistributedSampler::new(&comm, DistConfig::weighted(50, 3));
//!     let report = sampler.run_pipeline(&rx); // drain → process_batch → collect_output
//!     (report, ingest.join())
//! });
//! let (report, counters) = &reports[0];
//! assert_eq!(report.sample_size(), 50);
//! assert_eq!(counters.records_in, 2_000);
//! ```
//!
//! ## Quick start (multi-tenant sharded sampling)
//!
//! One independent weighted sample *per key* — per flow, per customer —
//! behind **one** collective schedule: a [`dist::ShardedSampler`] keeps a
//! reservoir per shard on every PE but pays one vectorized count and one
//! joint selection round sequence per mini-batch, instead of a full
//! per-tenant protocol (`O(S)` collective launches). Route records to
//! shards up front with a [`stream::ShardRouter`]:
//!
//! ```
//! use reservoir::comm::run_threads;
//! use reservoir::dist::{DistConfig, ShardedSampler};
//! use reservoir::stream::{route_by_id, Item};
//!
//! let shards = 8;
//! let handles = run_threads(2, move |comm| {
//!     use reservoir::comm::Communicator;
//!     let router = route_by_id(shards);
//!     let mut fleet = ShardedSampler::new(&comm, DistConfig::weighted(16, 11), shards);
//!     for batch in 0..3u64 {
//!         let items: Vec<Item> = (0..500)
//!             .map(|i| {
//!                 let id = ((comm.rank() as u64) << 40) | (batch * 500 + i);
//!                 Item::new(id, 1.0 + (i % 7) as f64)
//!             })
//!             .collect();
//!         let buckets = router.route(items);
//!         fleet.process_batch(&buckets); // ONE batched schedule for all shards
//!     }
//!     fleet.collect_output() // one root-free SampleHandle per shard
//! });
//! assert_eq!(handles[0].len(), shards);
//! assert!(handles[0].iter().all(|h| h.total_len() == 16));
//! ```
//!
//! ## One protocol, many backends: the engine layer
//!
//! `DistributedSampler`, `GatherSampler` (Section 4.5 baseline) and
//! `SimCluster` (the α–β cost simulator) are thin wrappers over a single
//! [`dist::engine::ReservoirProtocol`], which owns the Algorithm 1 step
//! sequence (insert_scan → count → select_prune) and the Section 5
//! output sequence (finalize → place). What varies per backend —
//! executing a collective versus charging its modeled cost, scanning a
//! real B+ tree versus drawing Poissonized candidates — lives behind the
//! [`dist::engine::SamplerBackend`] trait, so a protocol change is made
//! once and is automatically executed, baselined *and* priced.
//! `tests/engine_equivalence.rs` pins the wrappers to byte-identical
//! samples against driving the engine directly.
//!
//! ## Multicore PEs: the `threads_per_pe` knob
//!
//! Each PE's local jump scan — the per-batch hot path once the ingestion
//! runtime pushes batches faster than one core can scan them — can run on
//! a work-stealing pool ([`par`]) instead of a single thread. Chain
//! `.with_threads(t)` onto any `DistConfig` (or set the
//! `RESERVOIR_THREADS` environment variable to switch a whole run): the
//! batch is split into fixed-size chunks scanned with independent
//! per-chunk RNG streams and merged in a short sequential epilogue. The
//! sampling law is identical to the sequential scan (pinned by the
//! `par_chi_square` acceptance tests), and for a fixed seed the parallel
//! path draws the *same sample at every thread count* — chunk streams,
//! not worker streams, carry the randomness. For small, frequent
//! mini-batches, add `.with_persistent_pool(true)` to reuse one worker
//! crew across batches instead of spawning helper threads per scan
//! (`BatchReport::scan.spawns` drops to zero):
//!
//! ```
//! use reservoir::comm::run_threads;
//! use reservoir::dist::threaded::DistributedSampler;
//! use reservoir::dist::DistConfig;
//! use reservoir::stream::{StreamSpec, WeightGen};
//!
//! let spec = StreamSpec { pes: 2, batch_size: 800, weights: WeightGen::paper_uniform(), seed: 9 };
//! let run = |threads: usize| run_threads(2, move |comm| {
//!     use reservoir::comm::Communicator;
//!     let cfg = DistConfig::weighted(40, 9).with_threads(threads);
//!     let mut sampler = DistributedSampler::new(&comm, cfg);
//!     let mut source = spec.source_for(comm.rank());
//!     for _ in 0..3 {
//!         sampler.process_batch(&source.next_batch());
//!     }
//!     let mut ids: Vec<u64> = sampler.local_sample().iter().map(|m| m.id).collect();
//!     ids.sort_unstable();
//!     ids
//! });
//! assert_eq!(run(4), run(2)); // same seed ⇒ same sample on any parallel width
//! ```
//!
//! ## Always-fresh snapshots: reading the sample while it ingests
//!
//! With `.with_continuous(ContinuousMode::EveryBatch)` (or
//! `RESERVOIR_CONTINUOUS=1`) every selection round publishes an
//! immutable, checksummed [`dist::SampleEpoch`] — the sample finalized
//! to exactly `k` through the Section 5 path — behind a seqlock-guarded
//! pointer swap. A [`dist::SnapshotReader`] (cheap to clone, send it to
//! any thread) reads a consistent epoch at any moment without pausing
//! ingestion, and publication is observationally free: a fixed seed
//! yields the byte-identical final sample whether continuous mode is on
//! or off:
//!
//! ```
//! use reservoir::comm::run_threads;
//! use reservoir::dist::threaded::DistributedSampler;
//! use reservoir::dist::{ContinuousMode, DistConfig};
//! use reservoir::stream::{StreamSpec, WeightGen};
//!
//! let spec = StreamSpec { pes: 2, batch_size: 600, weights: WeightGen::paper_uniform(), seed: 5 };
//! let epochs = run_threads(2, |comm| {
//!     use reservoir::comm::Communicator;
//!     let cfg = DistConfig::weighted(30, 5).with_continuous(ContinuousMode::EveryBatch);
//!     let mut sampler = DistributedSampler::new(&comm, cfg);
//!     let reader = sampler.snapshot_reader(); // hand clones to reader threads
//!     let mut source = spec.source_for(comm.rank());
//!     for _ in 0..3 {
//!         sampler.process_batch(&source.next_batch());
//!     }
//!     let epoch = reader.read(); // consistent view, mid-ingestion
//!     assert!(epoch.verify() && epoch.epoch == 3 && epoch.total == 30);
//!     epoch.epoch
//! });
//! assert_eq!(epochs, vec![3, 3]);
//! ```
//!
//! ## Observability: metrics registry + flight recorder
//!
//! Set `RESERVOIR_OBS=1` (or call [`obs::set_enabled`]) and every layer
//! reports into one [`obs::Registry`] — collective launches and payload
//! words (`comm_*`, and `sim_*` for the α–β model's predictions), scan
//! chunks/steals, seqlock and OLC contention, ingestion backpressure,
//! epoch publications — plus a bounded per-PE flight recorder of
//! structured events ([`obs::TraceKind`]) for post-mortems. Disabled (the
//! default) is observationally free: a fixed seed draws the
//! byte-identical sample either way, and no collective is added. A
//! dashboard thread polls an [`obs::MetricsReader`] mid-ingestion —
//! seqlock-style version discipline, no pauses — and renders Prometheus
//! text or JSON:
//!
//! ```
//! use reservoir::comm::run_threads;
//! use reservoir::dist::threaded::DistributedSampler;
//! use reservoir::dist::DistConfig;
//! use reservoir::stream::{StreamSpec, WeightGen};
//!
//! reservoir::obs::set_enabled(true);
//! let spec = StreamSpec { pes: 2, batch_size: 400, weights: WeightGen::paper_uniform(), seed: 21 };
//! let dash = std::thread::spawn(|| {
//!     // Any thread may poll at any time; the reader refreshes its
//!     // directory only when the registry version moves.
//!     let mut reader = reservoir::obs::global().reader();
//!     reader.prometheus()
//! });
//! run_threads(2, |comm| {
//!     use reservoir::comm::Communicator;
//!     let mut sampler = DistributedSampler::new(&comm, DistConfig::weighted(20, 21));
//!     let mut source = spec.source_for(comm.rank());
//!     for _ in 0..3 {
//!         sampler.process_batch(&source.next_batch());
//!     }
//! });
//! dash.join().unwrap(); // polled concurrently, no coordination needed
//! let snap = reservoir::obs::global().snapshot();
//! assert_eq!(snap.counter("engine_batches_total"), 6); // 3 batches × 2 PEs
//! assert!(!reservoir::obs::recorder().dump().is_empty());
//! ```

pub use reservoir_core::{
    dist, metrics, sample, seq, PhaseFractions, PhaseTimes, PipelineReport, SampleHandle,
    SampleItem,
};

/// Augmented B+ tree (rank/select/split/join) — the local reservoirs.
pub mod btree {
    pub use reservoir_btree::*;
}

/// Message-passing substrate: Communicator, threaded runtime, cost model.
pub mod comm {
    pub use reservoir_comm::*;
}

/// Random number generation: MT19937-64, xoshiro256++, deviates.
pub mod rng {
    pub use reservoir_rng::*;
}

/// Intra-PE parallelism: work-stealing pool + parallel local scan.
pub mod par {
    pub use reservoir_par::*;
}

/// Distributed selection algorithms.
pub mod select {
    pub use reservoir_select::*;
}

/// Mini-batch stream model and workload generators.
pub mod stream {
    pub use reservoir_stream::*;
}

/// Unified observability: metrics registry, exporters, flight recorder.
pub mod obs {
    pub use reservoir_obs::*;
}
